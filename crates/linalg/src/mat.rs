//! Row-major dense `f64` matrix.
//!
//! [`Mat`] is the single data type flowing through every algorithm in this
//! repository: tensor slices, factor matrices, compressed SVD factors. It is
//! deliberately plain — a `Vec<f64>` plus a shape — so the cost model of the
//! DPar2 paper (flop counts proportional to `I·J·R` etc.) maps directly onto
//! the loops here.
//!
//! Multiplication is provided in the three transpose variants the PARAFAC2
//! algorithms need (`A·B`, `Aᵀ·B`, `A·Bᵀ`), each with an `_into` form that
//! reuses a caller-owned output buffer so hot ALS loops do not allocate.

use crate::error::{LinalgError, Result};
use crate::kernel::{self, Trans};
use crate::view::{AsMatRef, MatMut, MatRef};
use dpar2_parallel::ThreadPool;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Default for Mat {
    /// The empty `0 × 0` matrix — the canonical "unsized scratch buffer"
    /// starting state (every `_into` kernel resizes its output).
    fn default() -> Self {
        Mat::zeros(0, 0)
    }
}

impl Mat {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows × cols` matrix of ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Mat { rows, cols, data: vec![1.0; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a square diagonal matrix from `d`.
    pub fn diag(d: &[f64]) -> Self {
        let n = d.len();
        let mut m = Mat::zeros(n, n);
        for (i, &v) in d.iter().enumerate() {
            m.data[i * n + i] = v;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Mat::from_vec: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Mat { rows, cols, data }
    }

    /// Builds a matrix from explicit rows. All rows must have equal length.
    ///
    /// # Panics
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        if rows.is_empty() {
            return Mat::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "Mat::from_rows: row {i} has length {} != {cols}", r.len());
            data.extend_from_slice(r);
        }
        Mat { rows: rows.len(), cols, data }
    }

    /// Builds a matrix by evaluating `f(i, j)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Mat { rows, cols, data }
    }

    /// Builds an `n × 1` column vector.
    pub fn col_vector(v: &[f64]) -> Self {
        Mat { rows: v.len(), cols: 1, data: v.to_vec() }
    }

    /// Builds a `1 × n` row vector.
    pub fn row_vector(v: &[f64]) -> Self {
        Mat { rows: 1, cols: v.len(), data: v.to_vec() }
    }

    // ------------------------------------------------------------------
    // Shape and raw access
    // ------------------------------------------------------------------

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the matrix has zero entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the row-major backing store.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the row-major backing store.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its backing store.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Column `j` copied into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        debug_assert!(j < self.cols);
        (0..self.rows).map(|i| self.data[i * self.cols + j]).collect()
    }

    /// Overwrites row `i` with `v`.
    ///
    /// # Panics
    /// Panics if `v.len() != cols`.
    pub fn set_row(&mut self, i: usize, v: &[f64]) {
        assert_eq!(v.len(), self.cols, "set_row: length mismatch");
        self.row_mut(i).copy_from_slice(v);
    }

    /// Overwrites column `j` with `v`.
    ///
    /// # Panics
    /// Panics if `v.len() != rows`.
    pub fn set_col(&mut self, j: usize, v: &[f64]) {
        assert_eq!(v.len(), self.rows, "set_col: length mismatch");
        for (i, &x) in v.iter().enumerate() {
            self.data[i * self.cols + j] = x;
        }
    }

    /// Borrowed contiguous view of the whole matrix.
    #[inline]
    pub fn view(&self) -> MatRef<'_> {
        MatRef::from_slice(self.rows, self.cols, &self.data)
    }

    /// Borrowed mutable view of the whole matrix.
    #[inline]
    pub fn view_mut(&mut self) -> MatMut<'_> {
        MatMut::from_slice(self.rows, self.cols, &mut self.data)
    }

    /// Zero-copy view of the block `rows r0..r1`, `cols c0..c1` (half-open,
    /// strided when the column range is narrower than the matrix). The
    /// borrowing counterpart of [`Mat::block`].
    ///
    /// # Panics
    /// Panics if the block is out of bounds.
    #[inline]
    pub fn subview(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> MatRef<'_> {
        self.view().submatrix(r0, r1, c0, c1)
    }

    /// Mutable zero-copy view of a block (see [`Mat::subview`]).
    ///
    /// # Panics
    /// Panics if the block is out of bounds.
    #[inline]
    pub fn subview_mut(&mut self, r0: usize, r1: usize, c0: usize, c1: usize) -> MatMut<'_> {
        self.view_mut().submatrix_mut(r0, r1, c0, c1)
    }

    /// Overwrites this matrix with `src`, resizing to match (reuses the
    /// allocation when capacity suffices — the scratch-buffer idiom).
    pub fn copy_from(&mut self, src: impl AsMatRef) {
        src.as_mat_ref().copy_into(self);
    }

    /// Unchecked entry read (debug-asserted). Prefer indexing in cold code.
    #[inline(always)]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Unchecked entry write (debug-asserted).
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    // ------------------------------------------------------------------
    // Structural operations
    // ------------------------------------------------------------------

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        // Blocked transpose keeps both source rows and destination rows in
        // cache for large matrices.
        const B: usize = 32;
        for ib in (0..self.rows).step_by(B) {
            for jb in (0..self.cols).step_by(B) {
                let imax = (ib + B).min(self.rows);
                let jmax = (jb + B).min(self.cols);
                for i in ib..imax {
                    for j in jb..jmax {
                        t.data[j * self.rows + i] = self.data[i * self.cols + j];
                    }
                }
            }
        }
        t
    }

    /// Copies the rectangular block `rows r0..r1`, `cols c0..c1` (half-open).
    ///
    /// # Panics
    /// Panics if the block is out of bounds.
    pub fn block(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Mat {
        assert!(r0 <= r1 && r1 <= self.rows && c0 <= c1 && c1 <= self.cols, "block out of bounds");
        let mut out = Mat::zeros(r1 - r0, c1 - c0);
        for i in r0..r1 {
            out.row_mut(i - r0).copy_from_slice(&self.row(i)[c0..c1]);
        }
        out
    }

    /// Horizontal concatenation `[self ∥ other]`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if row counts differ.
    pub fn hstack(&self, other: &Mat) -> Result<Mat> {
        if self.rows != other.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "hstack",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut out = Mat::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        Ok(out)
    }

    /// Vertical concatenation `[self; other]`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if column counts differ.
    pub fn vstack(&self, other: &Mat) -> Result<Mat> {
        if self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "vstack",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Mat { rows: self.rows + other.rows, cols: self.cols, data })
    }

    /// Horizontal concatenation of many matrices with equal row counts.
    ///
    /// This is the `∥` operator of the paper, used to form
    /// `M = ∥_k (C_k B_k)` in DPar2's second compression stage.
    ///
    /// # Panics
    /// Panics if `mats` is empty or row counts differ.
    pub fn hstack_all(mats: &[&Mat]) -> Mat {
        assert!(!mats.is_empty(), "hstack_all: empty input");
        let rows = mats[0].rows;
        let cols: usize = mats.iter().map(|m| m.cols).sum();
        let mut out = Mat::zeros(rows, cols);
        for i in 0..rows {
            let dst = out.row_mut(i);
            let mut off = 0;
            for m in mats {
                assert_eq!(m.rows, rows, "hstack_all: row count mismatch");
                dst[off..off + m.cols].copy_from_slice(m.row(i));
                off += m.cols;
            }
        }
        out
    }

    /// Vertical concatenation of many matrices with equal column counts.
    ///
    /// # Panics
    /// Panics if `mats` is empty or column counts differ.
    pub fn vstack_all(mats: &[&Mat]) -> Mat {
        assert!(!mats.is_empty(), "vstack_all: empty input");
        let cols = mats[0].cols;
        let rows: usize = mats.iter().map(|m| m.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for m in mats {
            assert_eq!(m.cols, cols, "vstack_all: column count mismatch");
            data.extend_from_slice(&m.data);
        }
        Mat { rows, cols, data }
    }

    /// Column-major vectorization `vec(A)` (MATLAB convention), required by
    /// the identity `vec(AB) = (Bᵀ ⊗ I) vec(A)` used in Lemma 3 of the paper.
    pub fn vec_colmajor(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.len());
        for j in 0..self.cols {
            for i in 0..self.rows {
                v.push(self.data[i * self.cols + j]);
            }
        }
        v
    }

    /// The main diagonal as a vector.
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self.data[i * self.cols + i]).collect()
    }

    // ------------------------------------------------------------------
    // Element-wise operations
    // ------------------------------------------------------------------

    /// Applies `f` to every entry, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Mat {
        Mat { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Scales every entry by `s` in place.
    pub fn scale_mut(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Returns `s · self`.
    pub fn scaled(&self, s: f64) -> Mat {
        self.map(|x| x * s)
    }

    /// Element-wise (Hadamard, `∗` in the paper) product.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if shapes differ.
    pub fn hadamard(&self, other: &Mat) -> Result<Mat> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "hadamard",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a * b).collect();
        Ok(Mat { rows: self.rows, cols: self.cols, data })
    }

    /// In-place Hadamard product `self ∗= other` — the allocation-free form
    /// the ALS normal equations use (`WᵀW ∗ VᵀV` on scratch Gram buffers).
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn hadamard_assign(&mut self, other: impl AsMatRef) {
        let other = other.as_mat_ref();
        assert_eq!(self.shape(), other.shape(), "hadamard_assign: shape mismatch");
        for i in 0..self.rows {
            for (a, &b) in self.row_mut(i).iter_mut().zip(other.row(i)) {
                *a *= b;
            }
        }
    }

    /// `self += alpha * other` without allocating.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f64, other: &Mat) {
        assert_eq!(self.shape(), other.shape(), "axpy: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Frobenius norm `‖A‖_F`.
    pub fn fro_norm(&self) -> f64 {
        self.fro_norm_sq().sqrt()
    }

    /// Squared Frobenius norm (avoids the final `sqrt` in hot loops).
    pub fn fro_norm_sq(&self) -> f64 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Largest absolute entry, `max_ij |a_ij|` (0 for empty matrices).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
    }

    // ------------------------------------------------------------------
    // Multiplication kernels
    //
    // Every variant is a thin wrapper over the view-based dispatcher
    // [`mm_into`]: products below the [`kernel::use_blocked`] threshold run
    // the stride-aware naive loops (IEEE-faithful: no `== 0.0` shortcuts,
    // so `0·∞` and `0·NaN` propagate NaN per IEEE 754); larger products
    // take the packed, register-tiled path in [`crate::kernel`]. The
    // `_pooled` variants additionally fan row panels of C out over a
    // [`dpar2_parallel::ThreadPool`] and are bit-identical to their serial
    // counterparts for every thread count. Every `b` operand is
    // [`AsMatRef`], so `&Mat`, [`MatRef`] slices of a backing buffer, and
    // strided sub-blocks all flow through without copies.
    // ------------------------------------------------------------------

    /// `C = A · B`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if `A.cols != B.rows`.
    pub fn matmul(&self, b: impl AsMatRef) -> Result<Mat> {
        self.view().matmul(b)
    }

    /// `C = A · B` written into a pre-allocated `c` (resized if needed).
    ///
    /// # Panics
    /// Panics if `A.cols != B.rows`.
    pub fn matmul_into(&self, b: impl AsMatRef, c: &mut Mat) {
        self.view().matmul_into(b, c);
    }

    /// `C = A · B` with row panels of C computed in parallel on `pool`.
    /// Bit-identical to [`Mat::matmul`] for every pool size.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if `A.cols != B.rows`.
    pub fn matmul_pooled(&self, b: impl AsMatRef, pool: &ThreadPool) -> Result<Mat> {
        self.view().matmul_pooled(b, pool)
    }

    /// Pooled form of [`Mat::matmul_into`].
    ///
    /// # Panics
    /// Panics if `A.cols != B.rows`.
    pub fn matmul_pooled_into(&self, b: impl AsMatRef, c: &mut Mat, pool: &ThreadPool) {
        self.view().matmul_pooled_into(b, c, pool);
    }

    /// `C = Aᵀ · B` without materializing the transpose.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if `A.rows != B.rows`.
    pub fn matmul_tn(&self, b: impl AsMatRef) -> Result<Mat> {
        self.view().matmul_tn(b)
    }

    /// `C = Aᵀ · B` into a pre-allocated buffer.
    ///
    /// # Panics
    /// Panics if `A.rows != B.rows`.
    pub fn matmul_tn_into(&self, b: impl AsMatRef, c: &mut Mat) {
        self.view().matmul_tn_into(b, c);
    }

    /// `C = Aᵀ · B` with row panels of C computed in parallel on `pool`.
    /// Bit-identical to [`Mat::matmul_tn`] for every pool size.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if `A.rows != B.rows`.
    pub fn matmul_tn_pooled(&self, b: impl AsMatRef, pool: &ThreadPool) -> Result<Mat> {
        self.view().matmul_tn_pooled(b, pool)
    }

    /// Pooled form of [`Mat::matmul_tn_into`].
    ///
    /// # Panics
    /// Panics if `A.rows != B.rows`.
    pub fn matmul_tn_pooled_into(&self, b: impl AsMatRef, c: &mut Mat, pool: &ThreadPool) {
        self.view().matmul_tn_pooled_into(b, c, pool);
    }

    /// `C = A · Bᵀ` without materializing the transpose.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if `A.cols != B.cols`.
    pub fn matmul_nt(&self, b: impl AsMatRef) -> Result<Mat> {
        self.view().matmul_nt(b)
    }

    /// `C = A · Bᵀ` into a pre-allocated buffer.
    ///
    /// # Panics
    /// Panics if `A.cols != B.cols`.
    pub fn matmul_nt_into(&self, b: impl AsMatRef, c: &mut Mat) {
        self.view().matmul_nt_into(b, c);
    }

    /// `C = A · Bᵀ` with row panels of C computed in parallel on `pool`.
    /// Bit-identical to [`Mat::matmul_nt`] for every pool size.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if `A.cols != B.cols`.
    pub fn matmul_nt_pooled(&self, b: impl AsMatRef, pool: &ThreadPool) -> Result<Mat> {
        self.view().matmul_nt_pooled(b, pool)
    }

    /// Pooled form of [`Mat::matmul_nt_into`].
    ///
    /// # Panics
    /// Panics if `A.cols != B.cols`.
    pub fn matmul_nt_pooled_into(&self, b: impl AsMatRef, c: &mut Mat, pool: &ThreadPool) {
        self.view().matmul_nt_pooled_into(b, c, pool);
    }

    /// `C = Aᵀ · Bᵀ` — the fourth transpose variant, completing the GEMM
    /// family (equal to `(B·A)ᵀ`, computed directly without materializing
    /// either transpose).
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if `A.rows != B.cols`.
    pub fn matmul_tt(&self, b: impl AsMatRef) -> Result<Mat> {
        self.view().matmul_tt(b)
    }

    /// `C = Aᵀ · Bᵀ` into a pre-allocated buffer.
    ///
    /// # Panics
    /// Panics if `A.rows != B.cols`.
    pub fn matmul_tt_into(&self, b: impl AsMatRef, c: &mut Mat) {
        self.view().matmul_tt_into(b, c);
    }

    /// `C = Aᵀ · Bᵀ` with row panels of C computed in parallel on `pool`.
    /// Bit-identical to [`Mat::matmul_tt`] for every pool size.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if `A.rows != B.cols`.
    pub fn matmul_tt_pooled(&self, b: impl AsMatRef, pool: &ThreadPool) -> Result<Mat> {
        self.view().matmul_tt_pooled(b, pool)
    }

    /// Pooled form of [`Mat::matmul_tt_into`].
    ///
    /// # Panics
    /// Panics if `A.rows != B.cols`.
    pub fn matmul_tt_pooled_into(&self, b: impl AsMatRef, c: &mut Mat, pool: &ThreadPool) {
        self.view().matmul_tt_pooled_into(b, c, pool);
    }

    /// Matrix-vector product `A · x`.
    ///
    /// # Panics
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        self.view().matvec(x)
    }

    /// Vector-matrix product `Aᵀ · x` (equivalently `xᵀ A`).
    ///
    /// # Panics
    /// Panics if `x.len() != rows`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        self.view().matvec_t(x)
    }

    /// Gram matrix `Aᵀ A` (symmetric `cols × cols`).
    pub fn gram(&self) -> Mat {
        self.view().gram()
    }

    /// Gram matrix written into a pre-allocated buffer (resized if needed).
    pub fn gram_into(&self, g: &mut Mat) {
        self.view().gram_into(g);
    }

    /// Gram matrix with row panels computed in parallel on `pool`.
    /// Bit-identical to [`Mat::gram`] for every pool size.
    pub fn gram_pooled(&self, pool: &ThreadPool) -> Mat {
        self.view().gram_pooled(pool)
    }

    /// Reshapes in place to `rows × cols` filled with zeros, reusing the
    /// existing allocation when possible.
    pub fn resize_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Reshapes in place to `rows × cols` WITHOUT zeroing retained storage
    /// — only for buffers whose every entry is overwritten immediately
    /// after (the copy primitives), where the zero pass of
    /// [`Mat::resize_zeroed`] would double the memory traffic.
    pub(crate) fn resize_for_overwrite(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        let n = rows * cols;
        if self.data.len() != n {
            self.data.clear();
            self.data.resize(n, 0.0);
        }
    }
}

// ----------------------------------------------------------------------
// View-based multiply dispatch — the single implementation every `Mat`
// and `MatRef` entry point delegates to.
// ----------------------------------------------------------------------

/// Shape check for `op(a)·op(b)`, returning the logical `(m, n, k)`.
/// Panics with the calling operation's name on a mismatch.
fn mm_check(
    op: &'static str,
    ta: Trans,
    tb: Trans,
    a: MatRef<'_>,
    b: MatRef<'_>,
) -> (usize, usize, usize) {
    let (m, kk) = match ta {
        Trans::N => (a.rows(), a.cols()),
        Trans::T => (a.cols(), a.rows()),
    };
    let (kb, n) = match tb {
        Trans::N => (b.rows(), b.cols()),
        Trans::T => (b.cols(), b.rows()),
    };
    assert_eq!(kk, kb, "{op}: inner dimension mismatch");
    (m, n, kk)
}

/// `C = op(a)·op(b)` with size-based dispatch: blocked kernel above the
/// threshold, stride-aware naive loops below.
fn mm_into(
    op: &'static str,
    ta: Trans,
    tb: Trans,
    a: MatRef<'_>,
    b: MatRef<'_>,
    c: &mut Mat,
    pool: Option<&ThreadPool>,
) {
    let (m, n, kk) = mm_check(op, ta, tb, a, b);
    if kernel::use_blocked(m, n, kk) {
        match pool {
            Some(p) => kernel::gemm_pooled_into(ta, tb, a, b, c, p),
            None => kernel::gemm_into(ta, tb, a, b, c),
        }
        return;
    }
    mm_naive(ta, tb, a, b, c);
}

/// Stride-aware naive loops, one per transpose variant. Arithmetic order is
/// identical to the historical contiguous loops (each inner loop streams
/// rows, which stay contiguous in any view).
fn mm_naive(ta: Trans, tb: Trans, a: MatRef<'_>, b: MatRef<'_>, c: &mut Mat) {
    match (ta, tb) {
        (Trans::N, Trans::N) => {
            // i-k-j: the innermost loop streams over contiguous rows of
            // both B and C, which the compiler auto-vectorizes.
            c.resize_zeroed(a.rows(), b.cols());
            for i in 0..a.rows() {
                let arow = a.row(i);
                let crow = c.row_mut(i);
                for (k, &aik) in arow.iter().enumerate() {
                    for (cv, &bv) in crow.iter_mut().zip(b.row(k)) {
                        *cv += aik * bv;
                    }
                }
            }
        }
        (Trans::T, Trans::N) => {
            // Aᵀ·B: rank-1 updates row-by-row of A and B.
            c.resize_zeroed(a.cols(), b.cols());
            for k in 0..a.rows() {
                let arow = a.row(k);
                let brow = b.row(k);
                for (i, &aki) in arow.iter().enumerate() {
                    for (cv, &bv) in c.row_mut(i).iter_mut().zip(brow) {
                        *cv += aki * bv;
                    }
                }
            }
        }
        (Trans::N, Trans::T) => {
            // A·Bᵀ: each output entry is a dot product of two rows.
            c.resize_zeroed(a.rows(), b.rows());
            for i in 0..a.rows() {
                let arow = a.row(i);
                let crow = c.row_mut(i);
                for (j, cv) in crow.iter_mut().enumerate() {
                    *cv = dot(arow, b.row(j));
                }
            }
        }
        (Trans::T, Trans::T) => {
            // Aᵀ·Bᵀ: k-outer rank-1 updates.
            c.resize_zeroed(a.cols(), b.rows());
            for k in 0..a.rows() {
                let arow = a.row(k);
                for (i, &aki) in arow.iter().enumerate() {
                    let crow = c.row_mut(i);
                    for (j, cv) in crow.iter_mut().enumerate() {
                        *cv += aki * b.at(j, k);
                    }
                }
            }
        }
    }
}

/// Naive Gram accumulation: rank-1 updates row-by-row of A.
fn gram_naive(a: MatRef<'_>, g: &mut Mat) {
    g.resize_zeroed(a.cols(), a.cols());
    for k in 0..a.rows() {
        let row = a.row(k);
        for (i, &ri) in row.iter().enumerate() {
            for (gv, &rj) in g.row_mut(i).iter_mut().zip(row) {
                *gv += ri * rj;
            }
        }
    }
}

/// Builds the multiply method family on `MatRef` for one transpose variant.
macro_rules! view_matmul_variant {
    ($([$doc:literal, $name:ident, $into:ident, $pooled:ident, $pooled_into:ident,
        $op:literal, $ta:expr, $tb:expr, $ok:ident]),+ $(,)?) => {
        impl<'v> MatRef<'v> {
            $(
                #[doc = concat!("`", $doc, "` (see the identically-named [`Mat`] method).")]
                ///
                /// # Errors
                /// Returns [`LinalgError::DimensionMismatch`] on an inner-dimension mismatch.
                pub fn $name(self, b: impl AsMatRef) -> Result<Mat> {
                    let b = b.as_mat_ref();
                    if !$ok(self, b) {
                        return Err(LinalgError::DimensionMismatch {
                            op: $op,
                            left: self.shape(),
                            right: b.shape(),
                        });
                    }
                    let mut c = Mat::zeros(0, 0);
                    mm_into($op, $ta, $tb, self, b, &mut c, None);
                    Ok(c)
                }

                #[doc = concat!("`", $doc, "` into a pre-allocated buffer (resized if needed).")]
                ///
                /// # Panics
                /// Panics on an inner-dimension mismatch.
                pub fn $into(self, b: impl AsMatRef, c: &mut Mat) {
                    mm_into($op, $ta, $tb, self, b.as_mat_ref(), c, None);
                }

                #[doc = concat!("`", $doc, "` with row panels of C fanned out over `pool`; bit-identical to the serial form for every pool size.")]
                ///
                /// # Errors
                /// Returns [`LinalgError::DimensionMismatch`] on an inner-dimension mismatch.
                pub fn $pooled(self, b: impl AsMatRef, pool: &ThreadPool) -> Result<Mat> {
                    let b = b.as_mat_ref();
                    if !$ok(self, b) {
                        return Err(LinalgError::DimensionMismatch {
                            op: $op,
                            left: self.shape(),
                            right: b.shape(),
                        });
                    }
                    let mut c = Mat::zeros(0, 0);
                    mm_into($op, $ta, $tb, self, b, &mut c, Some(pool));
                    Ok(c)
                }

                #[doc = concat!("Pooled `", $doc, "` into a pre-allocated buffer.")]
                ///
                /// # Panics
                /// Panics on an inner-dimension mismatch.
                pub fn $pooled_into(self, b: impl AsMatRef, c: &mut Mat, pool: &ThreadPool) {
                    mm_into($op, $ta, $tb, self, b.as_mat_ref(), c, Some(pool));
                }
            )+
        }
    };
}

fn nn_ok(a: MatRef<'_>, b: MatRef<'_>) -> bool {
    a.cols() == b.rows()
}
fn tn_ok(a: MatRef<'_>, b: MatRef<'_>) -> bool {
    a.rows() == b.rows()
}
fn nt_ok(a: MatRef<'_>, b: MatRef<'_>) -> bool {
    a.cols() == b.cols()
}
fn tt_ok(a: MatRef<'_>, b: MatRef<'_>) -> bool {
    a.rows() == b.cols()
}

view_matmul_variant!(
    [
        "C = A · B",
        matmul,
        matmul_into,
        matmul_pooled,
        matmul_pooled_into,
        "matmul",
        Trans::N,
        Trans::N,
        nn_ok
    ],
    [
        "C = Aᵀ · B",
        matmul_tn,
        matmul_tn_into,
        matmul_tn_pooled,
        matmul_tn_pooled_into,
        "matmul_tn",
        Trans::T,
        Trans::N,
        tn_ok
    ],
    [
        "C = A · Bᵀ",
        matmul_nt,
        matmul_nt_into,
        matmul_nt_pooled,
        matmul_nt_pooled_into,
        "matmul_nt",
        Trans::N,
        Trans::T,
        nt_ok
    ],
    [
        "C = Aᵀ · Bᵀ",
        matmul_tt,
        matmul_tt_into,
        matmul_tt_pooled,
        matmul_tt_pooled_into,
        "matmul_tt",
        Trans::T,
        Trans::T,
        tt_ok
    ],
);

impl<'v> MatRef<'v> {
    /// Gram matrix `Aᵀ A` (symmetric `cols × cols`).
    pub fn gram(self) -> Mat {
        let mut g = Mat::zeros(0, 0);
        self.gram_into(&mut g);
        g
    }

    /// Gram matrix written into a pre-allocated buffer (resized if needed).
    pub fn gram_into(self, g: &mut Mat) {
        if kernel::use_blocked(self.cols(), self.cols(), self.rows()) {
            kernel::gemm_into(Trans::T, Trans::N, self, self, g);
            return;
        }
        gram_naive(self, g);
    }

    /// Gram matrix with row panels computed in parallel on `pool`.
    /// Bit-identical to [`MatRef::gram`] for every pool size.
    pub fn gram_pooled(self, pool: &ThreadPool) -> Mat {
        let mut g = Mat::zeros(0, 0);
        if kernel::use_blocked(self.cols(), self.cols(), self.rows()) {
            kernel::gemm_pooled_into(Trans::T, Trans::N, self, self, &mut g, pool);
            return g;
        }
        gram_naive(self, &mut g);
        g
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    // Four-lane manual unroll: reliably auto-vectorized and ~2-3x faster
    // than a naive fold for the long rows that dominate gemm time.
    let chunks = a.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for c in 0..chunks {
        let i = c * 4;
        s0 += a[i] * b[i];
        s1 += a[i + 1] * b[i + 1];
        s2 += a[i + 2] * b[i + 2];
        s3 += a[i + 3] * b[i + 3];
    }
    let mut tail = 0.0;
    for i in chunks * 4..a.len() {
        tail += a[i] * b[i];
    }
    s0 + s1 + s2 + s3 + tail
}

// ----------------------------------------------------------------------
// Operator impls
// ----------------------------------------------------------------------

impl Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Mat {
    type Output = Mat;
    fn add(self, rhs: &Mat) -> Mat {
        assert_eq!(self.shape(), rhs.shape(), "add: shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Mat { rows: self.rows, cols: self.cols, data }
    }
}

impl Sub for &Mat {
    type Output = Mat;
    fn sub(self, rhs: &Mat) -> Mat {
        assert_eq!(self.shape(), rhs.shape(), "sub: shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        Mat { rows: self.rows, cols: self.cols, data }
    }
}

impl AddAssign<&Mat> for Mat {
    fn add_assign(&mut self, rhs: &Mat) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl SubAssign<&Mat> for Mat {
    fn sub_assign(&mut self, rhs: &Mat) {
        assert_eq!(self.shape(), rhs.shape(), "sub_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }
}

impl Neg for &Mat {
    type Output = Mat;
    fn neg(self) -> Mat {
        self.map(|x| -x)
    }
}

/// `&a * &b` is `a.matmul(b)`; panics on dimension mismatch.
impl Mul for &Mat {
    type Output = Mat;
    fn mul(self, rhs: &Mat) -> Mat {
        self.matmul(rhs).expect("Mul: dimension mismatch")
    }
}

impl Mul<f64> for &Mat {
    type Output = Mat;
    fn mul(self, s: f64) -> Mat {
        self.scaled(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abcd() -> Mat {
        Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])
    }

    #[test]
    fn zeros_ones_eye_diag() {
        assert_eq!(Mat::zeros(2, 3).data(), &[0.0; 6]);
        assert_eq!(Mat::ones(1, 2).data(), &[1.0, 1.0]);
        let i = Mat::eye(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        let d = Mat::diag(&[2.0, 5.0]);
        assert_eq!(d[(1, 1)], 5.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn from_fn_indexing() {
        let m = Mat::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m[(1, 2)], 12.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
        assert_eq!(m.col(2), vec![2.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = abcd();
        let _ = m[(2, 0)];
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Mat::from_fn(7, 13, |i, j| (i * 100 + j) as f64);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(4, 5)], m[(5, 4)]);
    }

    #[test]
    fn transpose_blocked_large() {
        let m = Mat::from_fn(70, 41, |i, j| (i as f64).sin() + (j as f64).cos());
        let t = m.transpose();
        for i in 0..70 {
            for j in 0..41 {
                assert_eq!(t[(j, i)], m[(i, j)]);
            }
        }
    }

    #[test]
    fn matmul_small() {
        let a = abcd();
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Mat::from_fn(4, 4, |i, j| (i + j) as f64);
        let i = Mat::eye(4);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_dimension_error() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        assert!(matches!(a.matmul(&b), Err(LinalgError::DimensionMismatch { .. })));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Mat::from_fn(5, 3, |i, j| (i * 3 + j) as f64 * 0.5);
        let b = Mat::from_fn(5, 4, |i, j| (i + 2 * j) as f64);
        let expected = a.transpose().matmul(&b).unwrap();
        let got = a.matmul_tn(&b).unwrap();
        assert!((&expected - &got).fro_norm() < 1e-12);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Mat::from_fn(4, 6, |i, j| ((i + 1) * (j + 2)) as f64);
        let b = Mat::from_fn(3, 6, |i, j| (i as f64) - (j as f64));
        let expected = a.matmul(b.transpose()).unwrap();
        let got = a.matmul_nt(&b).unwrap();
        assert!((&expected - &got).fro_norm() < 1e-12);
    }

    #[test]
    fn matmul_tt_matches_explicit_transposes() {
        let a = Mat::from_fn(6, 4, |i, j| (i * 4 + j) as f64 * 0.25);
        let b = Mat::from_fn(5, 6, |i, j| (i as f64) - 0.5 * (j as f64));
        let expected = a.transpose().matmul(b.transpose()).unwrap();
        let got = a.matmul_tt(&b).unwrap();
        assert!((&expected - &got).fro_norm() < 1e-12);
        assert!(matches!(
            a.matmul_tt(Mat::zeros(3, 3)),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn pooled_variants_bitwise_equal_serial() {
        // 150 output rows > the MC = 120 row-panel unit, so the pooled arm
        // genuinely fans out over multiple workers (not the serial
        // fallback) in every variant below.
        let a = Mat::from_fn(150, 40, |i, j| ((i * 3 + j) as f64).sin());
        let b = Mat::from_fn(40, 50, |i, j| ((i + 7 * j) as f64).cos());
        let pool = ThreadPool::new(3);
        assert_eq!(a.matmul(&b).unwrap(), a.matmul_pooled(&b, &pool).unwrap());
        // Aᵀ·B with a 40×150 A: output 150×150.
        let at = a.transpose();
        assert_eq!(at.matmul_tn(&b).unwrap(), at.matmul_tn_pooled(&b, &pool).unwrap());
        assert_eq!(a.matmul_nt(&a).unwrap(), a.matmul_nt_pooled(&a, &pool).unwrap());
        let b2 = Mat::from_fn(50, 40, |i, j| ((2 * i + j) as f64).sin());
        assert_eq!(at.matmul_tt(&b2).unwrap(), {
            let mut c = Mat::zeros(0, 0);
            at.matmul_tt_pooled_into(&b2, &mut c, &pool);
            c
        });
        let tall = Mat::from_fn(60, 150, |i, j| ((i + j) as f64).cos());
        assert_eq!(tall.gram(), tall.gram_pooled(&pool));
    }

    #[test]
    fn ieee_zero_times_infinity_propagates_nan() {
        // Regression: the old kernels skipped `a == 0.0` multiplicands,
        // silently dropping the IEEE-mandated `0·∞ = NaN` / `0·NaN = NaN`.
        let a = Mat::from_rows(&[&[0.0, 1.0]]);
        let b_inf = Mat::from_rows(&[&[f64::INFINITY], &[2.0]]);
        let b_nan = Mat::from_rows(&[&[f64::NAN], &[2.0]]);
        assert!(a.matmul(&b_inf).unwrap()[(0, 0)].is_nan());
        assert!(a.matmul(&b_nan).unwrap()[(0, 0)].is_nan());

        // Same contract for the other variants.
        let at = a.transpose(); // 2×1
        assert!(at.matmul_tn(&b_inf).unwrap()[(0, 0)].is_nan());
        assert!(a.matmul_nt(b_inf.transpose()).unwrap()[(0, 0)].is_nan());
        assert!(at.matmul_tt(b_inf.transpose()).unwrap()[(0, 0)].is_nan());
        assert!(!a.matvec_t(&[0.0])[0].is_nan()); // 0·0 stays 0
        let inf_row = Mat::from_rows(&[&[f64::INFINITY, 1.0]]);
        assert!(inf_row.matvec_t(&[0.0])[0].is_nan());
    }

    #[test]
    fn ieee_gram_with_zero_and_infinity() {
        // A = [0  ∞]: AᵀA = [[0·0, 0·∞], [∞·0, ∞·∞]] = [[0, NaN], [NaN, ∞]].
        let a = Mat::from_rows(&[&[0.0, f64::INFINITY]]);
        let g = a.gram();
        assert_eq!(g[(0, 0)], 0.0);
        assert!(g[(0, 1)].is_nan());
        assert!(g[(1, 0)].is_nan());
        assert_eq!(g[(1, 1)], f64::INFINITY);
    }

    #[test]
    fn matmul_into_reuses_buffer() {
        let a = abcd();
        let b = Mat::eye(2);
        let mut c = Mat::zeros(7, 9); // wrong shape on purpose
        a.matmul_into(&b, &mut c);
        assert_eq!(c, a);
    }

    #[test]
    fn matvec_and_matvec_t() {
        let a = abcd();
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
        assert_eq!(a.matvec_t(&[1.0, 1.0]), vec![4.0, 6.0]);
    }

    #[test]
    fn gram_is_ata() {
        let a = Mat::from_fn(6, 3, |i, j| ((i * j) as f64).sin() + 1.0);
        let g = a.gram();
        let explicit = a.matmul_tn(&a).unwrap();
        assert!((&g - &explicit).fro_norm() < 1e-12);
        // symmetry
        assert!((&g - &g.transpose()).fro_norm() < 1e-12);
    }

    #[test]
    fn hstack_vstack() {
        let a = abcd();
        let b = Mat::from_rows(&[&[9.0], &[8.0]]);
        let h = a.hstack(&b).unwrap();
        assert_eq!(h.shape(), (2, 3));
        assert_eq!(h.row(0), &[1.0, 2.0, 9.0]);
        let v = a.vstack(&Mat::from_rows(&[&[5.0, 6.0]])).unwrap();
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn hstack_all_matches_pairwise() {
        let a = abcd();
        let b = Mat::from_rows(&[&[0.5], &[0.25]]);
        let c = Mat::from_rows(&[&[7.0, 7.5], &[8.0, 8.5]]);
        let all = Mat::hstack_all(&[&a, &b, &c]);
        let pair = a.hstack(&b).unwrap().hstack(&c).unwrap();
        assert_eq!(all, pair);
    }

    #[test]
    fn vstack_all_matches_pairwise() {
        let a = abcd();
        let b = Mat::from_rows(&[&[0.0, 1.0]]);
        let all = Mat::vstack_all(&[&a, &b]);
        assert_eq!(all, a.vstack(&b).unwrap());
    }

    #[test]
    fn block_extraction() {
        let m = Mat::from_fn(4, 5, |i, j| (i * 5 + j) as f64);
        let b = m.block(1, 3, 2, 5);
        assert_eq!(b.shape(), (2, 3));
        assert_eq!(b.row(0), &[7.0, 8.0, 9.0]);
        assert_eq!(b.row(1), &[12.0, 13.0, 14.0]);
    }

    #[test]
    fn vec_colmajor_matches_matlab_convention() {
        // MATLAB: A = [1 2; 3 4]; A(:) == [1; 3; 2; 4]
        let v = abcd().vec_colmajor();
        assert_eq!(v, vec![1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn hadamard_and_errors() {
        let a = abcd();
        let h = a.hadamard(&a).unwrap();
        assert_eq!(h.data(), &[1.0, 4.0, 9.0, 16.0]);
        assert!(a.hadamard(&Mat::zeros(3, 3)).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = abcd();
        let b = Mat::ones(2, 2);
        a.axpy(2.0, &b);
        assert_eq!(a.data(), &[3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn norms() {
        let a = Mat::from_rows(&[&[3.0, 4.0]]);
        assert!((a.fro_norm() - 5.0).abs() < 1e-15);
        assert_eq!(a.fro_norm_sq(), 25.0);
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(Mat::zeros(0, 0).max_abs(), 0.0);
    }

    #[test]
    fn dot_unrolled_matches_naive() {
        let a: Vec<f64> = (0..23).map(|i| i as f64 * 0.3).collect();
        let b: Vec<f64> = (0..23).map(|i| (i as f64).cos()).collect();
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-12);
    }

    #[test]
    fn operators() {
        let a = abcd();
        let sum = &a + &a;
        assert_eq!(sum.data(), &[2.0, 4.0, 6.0, 8.0]);
        let diff = &sum - &a;
        assert_eq!(diff, a);
        let neg = -&a;
        assert_eq!(neg[(0, 0)], -1.0);
        let prod = &a * &Mat::eye(2);
        assert_eq!(prod, a);
        let scaled = &a * 2.0;
        assert_eq!(scaled, sum);
        let mut acc = a.clone();
        acc += &a;
        assert_eq!(acc, sum);
        acc -= &a;
        assert_eq!(acc, a);
    }

    #[test]
    fn diagonal_of_rect() {
        let m = Mat::from_fn(3, 5, |i, j| if i == j { (i + 1) as f64 } else { 0.0 });
        assert_eq!(m.diagonal(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn set_row_set_col() {
        let mut m = Mat::zeros(2, 2);
        m.set_row(0, &[1.0, 2.0]);
        m.set_col(1, &[9.0, 8.0]);
        assert_eq!(m.data(), &[1.0, 9.0, 0.0, 8.0]);
    }
}
