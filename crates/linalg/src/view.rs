//! Borrowed, stride-aware matrix views: [`MatRef`] and [`MatMut`].
//!
//! A view is `(rows, cols, row_stride)` over a borrowed `f64` slice: row `i`
//! starts at `data[i * row_stride]` and spans `cols` contiguous entries.
//! Views are the lingua franca of every hot path in this workspace — GEMM
//! kernels, factorizations, tensor slices, and the solvers' scratch
//! machinery all operate on views, so sub-blocks of one backing buffer
//! (e.g. the slices of a `dpar2_tensor::IrregularTensor`) flow through the
//! whole stack without a single copy.
//!
//! * [`MatRef`] is `Copy` — pass it by value, like a slice.
//! * [`MatMut`] is a unique borrow; reborrow with [`MatMut::as_mut`].
//! * [`AsMatRef`] is the conversion bound the public linalg entry points
//!   take (`&Mat`, `MatRef`, and `&MatMut` all satisfy it), which is what
//!   lets pre-view call sites keep compiling unchanged.
//!
//! A view with `row_stride == cols` is *contiguous*: its logical entries
//! occupy one gap-free slice, retrievable via [`MatRef::data`]. Strided
//! views (column sub-blocks) still expose contiguous rows via
//! [`MatRef::row`], which is what the kernels' packing routines consume.

use crate::mat::Mat;
use std::fmt;
use std::ops::Index;

/// A shared, possibly-strided view of a dense row-major `f64` matrix.
#[derive(Clone, Copy)]
pub struct MatRef<'a> {
    rows: usize,
    cols: usize,
    row_stride: usize,
    data: &'a [f64],
}

/// A unique, possibly-strided mutable view of a dense row-major matrix.
pub struct MatMut<'a> {
    rows: usize,
    cols: usize,
    row_stride: usize,
    data: &'a mut [f64],
}

/// Checks the view invariant: every addressed entry lies inside `len`.
#[inline]
fn check_view(rows: usize, cols: usize, row_stride: usize, len: usize) {
    assert!(row_stride >= cols, "view: row_stride {row_stride} < cols {cols}");
    if rows > 0 && cols > 0 {
        let last = (rows - 1) * row_stride + cols;
        assert!(last <= len, "view: {rows}x{cols} (stride {row_stride}) exceeds buffer of {len}");
    }
}

impl<'a> MatRef<'a> {
    /// A contiguous `rows × cols` view over `data` (row `i` at
    /// `data[i * cols..]`).
    ///
    /// # Panics
    /// Panics if `data.len() < rows * cols`.
    pub fn from_slice(rows: usize, cols: usize, data: &'a [f64]) -> Self {
        Self::from_parts(rows, cols, cols, data)
    }

    /// A strided view: row `i` spans `data[i * row_stride..][..cols]`.
    ///
    /// # Panics
    /// Panics if `row_stride < cols` or the last addressed entry is out of
    /// bounds.
    pub fn from_parts(rows: usize, cols: usize, row_stride: usize, data: &'a [f64]) -> Self {
        check_view(rows, cols, row_stride, data.len());
        MatRef { rows, cols, row_stride, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Distance (in elements) between the starts of consecutive rows.
    #[inline]
    pub fn row_stride(self) -> usize {
        self.row_stride
    }

    /// Total number of logical entries.
    #[inline]
    pub fn len(self) -> usize {
        self.rows * self.cols
    }

    /// True if the view has zero entries.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// True when the logical entries occupy one gap-free slice
    /// (`row_stride == cols`, or the view has at most one row).
    #[inline]
    pub fn is_contiguous(self) -> bool {
        self.row_stride == self.cols || self.rows <= 1 || self.cols == 0
    }

    /// The logical entries as one row-major slice.
    ///
    /// # Panics
    /// Panics if the view is strided (see [`MatRef::is_contiguous`]).
    #[inline]
    pub fn data(self) -> &'a [f64] {
        assert!(self.is_contiguous(), "MatRef::data: view is strided; use row-wise access");
        &self.data[..self.rows * self.cols]
    }

    /// Entry `(i, j)` (debug-asserted bounds).
    #[inline(always)]
    pub fn at(self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.row_stride + j]
    }

    /// Row `i` as a contiguous slice of length `cols`.
    #[inline]
    pub fn row(self, i: usize) -> &'a [f64] {
        debug_assert!(i < self.rows);
        if self.cols == 0 {
            return &[];
        }
        &self.data[i * self.row_stride..i * self.row_stride + self.cols]
    }

    /// Column `j` copied into a new vector.
    pub fn col(self, j: usize) -> Vec<f64> {
        debug_assert!(j < self.cols);
        (0..self.rows).map(|i| self.at(i, j)).collect()
    }

    /// Zero-copy sub-block view of `rows r0..r1`, `cols c0..c1` (half-open);
    /// strided whenever `c1 - c0 < cols`.
    ///
    /// # Panics
    /// Panics if the block is out of bounds.
    pub fn submatrix(self, r0: usize, r1: usize, c0: usize, c1: usize) -> MatRef<'a> {
        assert!(
            r0 <= r1 && r1 <= self.rows && c0 <= c1 && c1 <= self.cols,
            "submatrix out of bounds"
        );
        // Empty blocks borrow an empty slice (their start offset may lie
        // past the parent's last addressed entry).
        let (start, end) = if r1 > r0 && c1 > c0 {
            let s = r0 * self.row_stride + c0;
            (s, s + (r1 - 1 - r0) * self.row_stride + (c1 - c0))
        } else {
            (0, 0)
        };
        MatRef {
            rows: r1 - r0,
            cols: c1 - c0,
            row_stride: self.row_stride,
            data: &self.data[start..end],
        }
    }

    /// Materializes the view into an owned [`Mat`].
    pub fn to_mat(self) -> Mat {
        let mut m = Mat::zeros(0, 0);
        self.copy_into(&mut m);
        m
    }

    /// Copies the view into `out`, resizing it to match. Every destination
    /// entry is overwritten, so no zeroing pass runs; contiguous sources
    /// copy as one `memcpy`.
    pub fn copy_into(self, out: &mut Mat) {
        out.resize_for_overwrite(self.rows, self.cols);
        if self.is_contiguous() {
            out.data_mut().copy_from_slice(self.data());
            return;
        }
        for i in 0..self.rows {
            out.row_mut(i).copy_from_slice(self.row(i));
        }
    }

    /// Returns the transpose as an owned matrix (blocked copy, same
    /// algorithm as [`Mat::transpose`]).
    pub fn transpose(self) -> Mat {
        let mut t = Mat::zeros(0, 0);
        self.transpose_into(&mut t);
        t
    }

    /// Writes the transpose into `out` (resized to `cols × rows`).
    pub fn transpose_into(self, out: &mut Mat) {
        out.resize_zeroed(self.cols, self.rows);
        const B: usize = 32;
        for ib in (0..self.rows).step_by(B) {
            for jb in (0..self.cols).step_by(B) {
                let imax = (ib + B).min(self.rows);
                let jmax = (jb + B).min(self.cols);
                for i in ib..imax {
                    for j in jb..jmax {
                        out.set(j, i, self.at(i, j));
                    }
                }
            }
        }
    }

    /// Squared Frobenius norm. Iterates entries in row-major logical order,
    /// so the result is bit-identical to [`Mat::fro_norm_sq`] on the
    /// materialized view.
    pub fn fro_norm_sq(self) -> f64 {
        if self.is_contiguous() {
            return self.data().iter().map(|&x| x * x).sum();
        }
        let mut total = 0.0;
        for i in 0..self.rows {
            for &x in self.row(i) {
                total += x * x;
            }
        }
        total
    }

    /// Frobenius norm.
    pub fn fro_norm(self) -> f64 {
        self.fro_norm_sq().sqrt()
    }

    /// Fused squared Frobenius distance `‖self − other‖²_F` without
    /// materializing the difference. The subtract/square/accumulate
    /// sequence runs in row-major logical order — identical to
    /// `(self − other).fro_norm_sq()` bit for bit — and this is the single
    /// shared implementation every convergence/fitness check uses, so the
    /// ordering guarantee lives in exactly one place.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn diff_norm_sq(self, other: impl AsMatRef) -> f64 {
        let other = other.as_mat_ref();
        assert_eq!(self.shape(), other.shape(), "diff_norm_sq: shape mismatch");
        let mut total = 0.0;
        for i in 0..self.rows {
            for (&x, &y) in self.row(i).iter().zip(other.row(i)) {
                let d = x - y;
                total += d * d;
            }
        }
        total
    }

    /// Largest absolute entry (0 for empty views).
    pub fn max_abs(self) -> f64 {
        let mut best = 0.0f64;
        for i in 0..self.rows {
            for &x in self.row(i) {
                best = best.max(x.abs());
            }
        }
        best
    }

    /// Matrix-vector product `A · x`.
    ///
    /// # Panics
    /// Panics if `x.len() != cols`.
    pub fn matvec(self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec: length mismatch");
        (0..self.rows).map(|i| crate::mat::dot(self.row(i), x)).collect()
    }

    /// Writes `A · x` into `out` (resized to `rows`).
    ///
    /// # Panics
    /// Panics if `x.len() != cols`.
    pub fn matvec_into(self, x: &[f64], out: &mut Vec<f64>) {
        assert_eq!(x.len(), self.cols, "matvec_into: length mismatch");
        out.clear();
        out.extend((0..self.rows).map(|i| crate::mat::dot(self.row(i), x)));
    }

    /// Vector-matrix product `Aᵀ · x`.
    ///
    /// # Panics
    /// Panics if `x.len() != rows`.
    pub fn matvec_t(self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_t: length mismatch");
        let mut out = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            for (o, &a) in out.iter_mut().zip(self.row(i)) {
                *o += xi * a;
            }
        }
        out
    }
}

impl<'a> MatMut<'a> {
    /// A contiguous `rows × cols` mutable view over `data`.
    ///
    /// # Panics
    /// Panics if `data.len() < rows * cols`.
    pub fn from_slice(rows: usize, cols: usize, data: &'a mut [f64]) -> Self {
        Self::from_parts(rows, cols, cols, data)
    }

    /// A strided mutable view: row `i` spans `data[i * row_stride..][..cols]`.
    ///
    /// # Panics
    /// Panics if `row_stride < cols` or the last addressed entry is out of
    /// bounds.
    pub fn from_parts(rows: usize, cols: usize, row_stride: usize, data: &'a mut [f64]) -> Self {
        check_view(rows, cols, row_stride, data.len());
        MatMut { rows, cols, row_stride, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Distance (in elements) between the starts of consecutive rows.
    #[inline]
    pub fn row_stride(&self) -> usize {
        self.row_stride
    }

    /// Shared view of the same block.
    #[inline]
    pub fn as_ref(&self) -> MatRef<'_> {
        MatRef { rows: self.rows, cols: self.cols, row_stride: self.row_stride, data: self.data }
    }

    /// Reborrows the view mutably (for passing to helpers without moving).
    #[inline]
    pub fn as_mut(&mut self) -> MatMut<'_> {
        MatMut { rows: self.rows, cols: self.cols, row_stride: self.row_stride, data: self.data }
    }

    /// Entry `(i, j)` (debug-asserted bounds).
    #[inline(always)]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.row_stride + j]
    }

    /// Writes entry `(i, j)` (debug-asserted bounds).
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.row_stride + j] = v;
    }

    /// Row `i` as a contiguous mutable slice of length `cols`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        if self.cols == 0 {
            return &mut [];
        }
        &mut self.data[i * self.row_stride..i * self.row_stride + self.cols]
    }

    /// Row `i` as a shared slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        if self.cols == 0 {
            return &[];
        }
        &self.data[i * self.row_stride..i * self.row_stride + self.cols]
    }

    /// Fills every logical entry with `v` (strided-safe).
    pub fn fill(&mut self, v: f64) {
        for i in 0..self.rows {
            self.row_mut(i).fill(v);
        }
    }

    /// Copies `src` into this view.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn copy_from(&mut self, src: impl AsMatRef) {
        let src = src.as_mat_ref();
        assert_eq!(self.shape(), src.shape(), "MatMut::copy_from: shape mismatch");
        for i in 0..self.rows {
            self.row_mut(i).copy_from_slice(src.row(i));
        }
    }

    /// Zero-copy mutable sub-block of `rows r0..r1`, `cols c0..c1`.
    ///
    /// # Panics
    /// Panics if the block is out of bounds.
    pub fn submatrix_mut(self, r0: usize, r1: usize, c0: usize, c1: usize) -> MatMut<'a> {
        assert!(
            r0 <= r1 && r1 <= self.rows && c0 <= c1 && c1 <= self.cols,
            "submatrix_mut out of bounds"
        );
        // Empty blocks borrow an empty slice (their start offset may lie
        // past the parent's last addressed entry).
        let (start, end) = if r1 > r0 && c1 > c0 {
            let s = r0 * self.row_stride + c0;
            (s, s + (r1 - 1 - r0) * self.row_stride + (c1 - c0))
        } else {
            (0, 0)
        };
        MatMut {
            rows: r1 - r0,
            cols: c1 - c0,
            row_stride: self.row_stride,
            data: &mut self.data[start..end],
        }
    }
}

/// Conversion bound accepted by every view-based linalg entry point.
///
/// `&Mat`, [`MatRef`] (by value — it is `Copy`), `&MatRef`, and `&MatMut`
/// all satisfy it, which is what lets pre-view call sites keep compiling
/// against the view-based signatures.
pub trait AsMatRef {
    /// The shared view of this matrix-like value.
    fn as_mat_ref(&self) -> MatRef<'_>;
}

impl AsMatRef for Mat {
    #[inline]
    fn as_mat_ref(&self) -> MatRef<'_> {
        self.view()
    }
}

impl AsMatRef for MatRef<'_> {
    #[inline]
    fn as_mat_ref(&self) -> MatRef<'_> {
        *self
    }
}

impl AsMatRef for MatMut<'_> {
    #[inline]
    fn as_mat_ref(&self) -> MatRef<'_> {
        self.as_ref()
    }
}

impl<T: AsMatRef + ?Sized> AsMatRef for &T {
    #[inline]
    fn as_mat_ref(&self) -> MatRef<'_> {
        (**self).as_mat_ref()
    }
}

// ----------------------------------------------------------------------
// Trait impls: Debug, Index, PartialEq, arithmetic
// ----------------------------------------------------------------------

impl fmt::Debug for MatRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MatRef")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("row_stride", &self.row_stride)
            .finish_non_exhaustive()
    }
}

impl fmt::Debug for MatMut<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MatMut")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("row_stride", &self.row_stride)
            .finish_non_exhaustive()
    }
}

impl Index<(usize, usize)> for MatRef<'_> {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[i * self.row_stride + j]
    }
}

/// Logical (entry-wise) equality, stride-agnostic.
fn view_eq(a: MatRef<'_>, b: MatRef<'_>) -> bool {
    a.shape() == b.shape() && (0..a.rows()).all(|i| a.row(i) == b.row(i))
}

impl PartialEq for MatRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        view_eq(*self, *other)
    }
}

impl PartialEq<Mat> for MatRef<'_> {
    fn eq(&self, other: &Mat) -> bool {
        view_eq(*self, other.view())
    }
}

impl PartialEq<MatRef<'_>> for Mat {
    fn eq(&self, other: &MatRef<'_>) -> bool {
        view_eq(self.view(), *other)
    }
}

/// Element-wise combination of two equal-shape views into a fresh `Mat`.
fn zip_views(a: MatRef<'_>, b: MatRef<'_>, op: &'static str, f: impl Fn(f64, f64) -> f64) -> Mat {
    assert_eq!(a.shape(), b.shape(), "{op}: shape mismatch");
    let mut out = Mat::zeros(a.rows(), a.cols());
    for i in 0..a.rows() {
        for ((o, &x), &y) in out.row_mut(i).iter_mut().zip(a.row(i)).zip(b.row(i)) {
            *o = f(x, y);
        }
    }
    out
}

impl std::ops::Sub for MatRef<'_> {
    type Output = Mat;
    fn sub(self, rhs: MatRef<'_>) -> Mat {
        zip_views(self, rhs, "sub", |x, y| x - y)
    }
}

impl std::ops::Sub<&Mat> for MatRef<'_> {
    type Output = Mat;
    fn sub(self, rhs: &Mat) -> Mat {
        zip_views(self, rhs.view(), "sub", |x, y| x - y)
    }
}

impl std::ops::Sub<MatRef<'_>> for &Mat {
    type Output = Mat;
    fn sub(self, rhs: MatRef<'_>) -> Mat {
        zip_views(self.view(), rhs, "sub", |x, y| x - y)
    }
}

impl std::ops::Add for MatRef<'_> {
    type Output = Mat;
    fn add(self, rhs: MatRef<'_>) -> Mat {
        zip_views(self, rhs, "add", |x, y| x + y)
    }
}

impl std::ops::Add<&Mat> for MatRef<'_> {
    type Output = Mat;
    fn add(self, rhs: &Mat) -> Mat {
        zip_views(self, rhs.view(), "add", |x, y| x + y)
    }
}

impl std::ops::Add<MatRef<'_>> for &Mat {
    type Output = Mat;
    fn add(self, rhs: MatRef<'_>) -> Mat {
        zip_views(self.view(), rhs, "add", |x, y| x + y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Mat {
        Mat::from_fn(4, 5, |i, j| (i * 5 + j) as f64)
    }

    #[test]
    fn whole_matrix_view_roundtrip() {
        let m = sample();
        let v = m.view();
        assert_eq!(v.shape(), (4, 5));
        assert!(v.is_contiguous());
        assert_eq!(v.data(), m.data());
        assert_eq!(v.to_mat(), m);
        assert_eq!(v, m);
    }

    #[test]
    fn strided_submatrix_entries() {
        let m = sample();
        let v = m.subview(1, 3, 2, 5);
        assert_eq!(v.shape(), (2, 3));
        assert_eq!(v.row_stride(), 5);
        assert!(!v.is_contiguous());
        assert_eq!(v.row(0), &[7.0, 8.0, 9.0]);
        assert_eq!(v.row(1), &[12.0, 13.0, 14.0]);
        assert_eq!(v.at(1, 2), 14.0);
        assert_eq!(v[(0, 1)], 8.0);
        // Matches the copying `block` extractor bitwise.
        assert_eq!(v.to_mat(), m.block(1, 3, 2, 5));
    }

    #[test]
    fn nested_submatrix() {
        let m = sample();
        let v = m.subview(0, 4, 1, 5).submatrix(1, 3, 1, 3);
        assert_eq!(v.to_mat(), m.block(1, 3, 2, 4));
    }

    #[test]
    fn norms_match_materialized() {
        let m = sample();
        let v = m.subview(0, 3, 1, 4);
        let owned = v.to_mat();
        assert_eq!(v.fro_norm_sq().to_bits(), owned.fro_norm_sq().to_bits());
        assert_eq!(v.max_abs(), owned.max_abs());
    }

    #[test]
    fn transpose_matches_owned() {
        let m = sample();
        assert_eq!(m.view().transpose(), m.transpose());
        let v = m.subview(1, 4, 0, 3);
        assert_eq!(v.transpose(), v.to_mat().transpose());
    }

    #[test]
    fn matmut_write_through() {
        let mut m = Mat::zeros(3, 4);
        {
            let mut v = m.view_mut().submatrix_mut(1, 3, 1, 3);
            v.fill(2.0);
            v.set(0, 0, 9.0);
        }
        assert_eq!(m[(1, 1)], 9.0);
        assert_eq!(m[(2, 2)], 2.0);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(1, 3)], 0.0);
    }

    #[test]
    fn matmut_copy_from_strided() {
        let src = sample();
        let mut dst = Mat::zeros(2, 3);
        dst.view_mut().copy_from(src.subview(1, 3, 2, 5));
        assert_eq!(dst, src.block(1, 3, 2, 5));
    }

    #[test]
    fn empty_views() {
        let m = Mat::zeros(0, 0);
        let v = m.view();
        assert!(v.is_empty());
        assert_eq!(v.fro_norm_sq(), 0.0);
        let s = sample();
        let e = s.subview(2, 2, 1, 4);
        assert_eq!(e.shape(), (0, 3));
        assert_eq!(e.to_mat(), Mat::zeros(0, 3));
    }

    #[test]
    fn add_sub_operators() {
        let m = sample();
        let a = m.subview(0, 2, 0, 3);
        let b = m.subview(2, 4, 2, 5);
        let sum = a + b;
        let diff = a - b;
        assert_eq!(&sum - b, a.to_mat());
        assert_eq!(&sum - &diff.map(|x| -x), &(a.to_mat()) + &a.to_mat());
        assert_eq!(a - &a.to_mat(), Mat::zeros(2, 3));
    }

    #[test]
    fn matvec_on_views() {
        let m = sample();
        let v = m.subview(1, 3, 1, 4);
        let x = [1.0, 2.0, 3.0];
        assert_eq!(v.matvec(&x), v.to_mat().matvec(&x));
        let y = [1.0, -1.0];
        assert_eq!(v.matvec_t(&y), v.to_mat().matvec_t(&y));
    }

    #[test]
    #[should_panic(expected = "strided")]
    fn data_on_strided_view_panics() {
        let m = sample();
        let _ = m.subview(0, 2, 0, 3).data();
    }

    #[test]
    #[should_panic(expected = "exceeds buffer")]
    fn oversized_view_panics() {
        let buf = vec![0.0; 5];
        let _ = MatRef::from_slice(2, 3, &buf);
    }
}
