//! # dpar2-linalg
//!
//! Dense linear-algebra substrate for the DPar2 reproduction.
//!
//! The DPar2 paper (Jang & Kang, ICDE 2022) was evaluated on MATLAB, which
//! delegates to LAPACK/BLAS. This crate provides the subset of that
//! functionality the paper's algorithms need, implemented from scratch in
//! safe Rust on `f64`:
//!
//! * [`Mat`] — a row-major dense matrix with the usual arithmetic, all four
//!   GEMM transpose variants (`A·B`, `Aᵀ·B`, `A·Bᵀ`, `Aᵀ·Bᵀ`) and slicing
//!   helpers.
//! * [`kernel`] — the blocked, register-tiled GEMM layer under every
//!   multiply: packed `MR×NR` microkernel tiles (AVX2+FMA when the CPU has
//!   them, detected at runtime), a size-based dispatch that keeps small
//!   products on the naive loops, and a pooled path that row-partitions the
//!   output over a [`dpar2_parallel::ThreadPool`] with bit-identical
//!   results for every thread count.
//! * [`mod@qr`] — Householder thin-QR factorization.
//! * [`svd`] — one-sided Jacobi singular value decomposition (with QR
//!   preconditioning for tall matrices), plus rank-truncated variants.
//! * [`eig`] — cyclic Jacobi eigendecomposition of symmetric matrices.
//! * [`mod@pinv`] — Moore–Penrose pseudoinverse via the SVD, as required by the
//!   CP-ALS update rules (the `†` operator in Algorithm 2/3 of the paper).
//! * [`solve`] — LU and triangular solves (used by tests and baselines).
//! * [`random`] — seeded Gaussian/uniform matrix generation (Box–Muller), the
//!   `Ω` test matrices of randomized SVD.
//! * [`sparse`] — CSR slices ([`SparseSlice`], [`CooBuilder`]) and the
//!   sparse kernel family (SpMM, transposed SpMM, Gram, mode-3 MTTKRP,
//!   norms over nonzeros), each bitwise identical to densifying and
//!   running the corresponding naive dense loop.
//!
//! Everything is deterministic given a seed and needs no external BLAS.
//! The crate is safe Rust except for one narrowly-scoped exception in
//! [`kernel`]: invoking the runtime-feature-dispatched AVX2/FMA microkernel
//! (`#[target_feature]` functions are `unsafe` to call; the call is guarded
//! by `is_x86_feature_detected!`).
//!
//! ## Example
//!
//! ```
//! use dpar2_linalg::{Mat, svd::svd_thin};
//!
//! let a = Mat::from_rows(&[&[3.0, 1.0], &[1.0, 3.0], &[0.0, 2.0]]);
//! let f = svd_thin(&a);
//! let reconstructed = &(&f.u * &Mat::diag(&f.s)) * &f.v.transpose();
//! assert!((&a - &reconstructed).fro_norm() < 1e-10);
//! ```

// Dense factorization kernels (Householder updates, Jacobi rotations,
// triangular solves) index several arrays in lock-step along computed
// ranges; explicit index loops are the clearest and fastest expression.
#![allow(clippy::needless_range_loop)]

pub mod eig;
pub mod error;
pub mod kernel;
pub mod mat;
pub mod norms;
pub mod pinv;
pub mod qr;
pub mod random;
pub mod solve;
pub mod sparse;
pub mod svd;
pub mod view;

pub use error::{LinalgError, Result};
pub use mat::Mat;
pub use pinv::{pinv, pinv_into};
pub use qr::{qr, qr_into, QrFactors, QrScratch};
pub use random::{gaussian_mat, uniform_mat};
pub use sparse::{CooBuilder, SparseSlice};
pub use svd::{svd_thin, svd_truncated, SvdFactors, SvdScratch};
pub use view::{AsMatRef, MatMut, MatRef};

/// Machine-epsilon-scale tolerance used across factorization routines when
/// deciding whether a value is numerically zero.
pub const EPS: f64 = 1e-12;
