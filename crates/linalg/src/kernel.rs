//! Blocked, register-tiled GEMM kernels — the workspace's innermost layer.
//!
//! Every hot path of the DPar2 reproduction (both compression stages, the
//! compressed ALS iterations, the rSVD power iterations, and all three ALS
//! baselines) is a chain of dense matrix products, so the throughput of this
//! module bounds the throughput of the whole system. The naive i-k-j loops
//! in [`Mat`] stream the full `B` operand through cache once per output row;
//! past L1-sized operands they are memory-bound. This module replaces them —
//! above a size threshold — with the classic three-level blocked scheme
//! (Goto & van de Geijn; the BLIS "five loops around the microkernel"):
//!
//! ```text
//! serial:                                  pooled:
//! for pc in 0..K step KC:                  pack ALL op(B) blocks (shared)
//!   for jc in 0..N step NC:                for ic in 0..M step MC:  ∥ pool
//!     pack op(B)[pc.., jc..]  (reused buf)   for pc in 0..K step KC:
//!     for ic in 0..M step MC:                  pack op(A)[ic.., pc..]
//!       pack op(A)[ic.., pc..] (reused buf)    for jc in 0..N step NC:
//!       macro-kernel (MR×NR tiles)               macro-kernel (MR×NR tiles)
//! ```
//!
//! The serial path keeps exactly one `KC×NC` packed B block and one
//! `MC×KC` packed A block alive (Goto's bounded-workspace scheme); the
//! pooled path pre-packs all of `op(B)` once because every row-panel
//! worker sweeps every block. Both accumulate each C entry over ascending
//! depth blocks with identical tile arithmetic, so they are bit-identical.
//!
//! * **Packing**: `op(A)` blocks are repacked into contiguous `MR`-row
//!   panels (`panel[p*MR + r]`), `op(B)` blocks into `NR`-column panels
//!   (`panel[p*NR + c]`), so the microkernel reads both operands with unit
//!   stride regardless of the transpose variant. Ragged edges are
//!   zero-padded up to the register tile; padded lanes are never written
//!   back, so NaN/∞ inputs cannot leak outside the logical output.
//! * **Microkernel**: an `MR×NR = 6×8` f64 accumulator tile held in
//!   registers (twelve 4-lane YMM accumulators), updated with fused
//!   multiply-adds down the packed depth. At runtime, if the CPU supports
//!   AVX2+FMA the tile runs as explicit `vfmadd231pd` intrinsics;
//!   otherwise a portable auto-vectorized `a*b + c` fallback is used
//!   (plain `mul_add` without hardware FMA lowers to a slow libm call).
//!   This is the crate's single, narrowly-scoped `unsafe` exception: the
//!   SIMD tile plus the `#[target_feature]` call, guarded by the matching
//!   `is_x86_feature_detected!` check.
//! * **Parallelism**: [`gemm_pooled_into`] row-partitions C into `MC`-row
//!   panels and fans them out over
//!   [`dpar2_parallel::ThreadPool::for_each_chunk_mut`]. Each panel is
//!   computed by exactly one worker with a fixed depth-block order, so the
//!   result is **bit-identical** for every thread count — and bit-identical
//!   to the serial blocked path ([`gemm_into`]), which runs the same
//!   per-panel code.
//!
//! Reduction order (for reasoning about reproducibility): entry `C[i][j]`
//! accumulates its `K` products in ascending-`k` order *within* each `KC`
//! block (single rounding per step, in registers), and the per-block
//! partial sums are added to `C` in ascending block order. This differs
//! from the naive kernels' flat ascending-`k` order only in rounding, which
//! is why the differential suite (`tests/gemm_differential.rs`) compares
//! the two to summation-length-scaled ulp bounds rather than bit equality.
//!
//! The naive loops are retained as [`gemm_naive_into`] — the IEEE-faithful
//! reference oracle (no `x == 0.0` shortcuts: `0·∞` and `0·NaN` must yield
//! NaN) and the small-size fast path behind [`Mat::matmul`]'s dispatch.

use crate::mat::Mat;
use crate::view::{AsMatRef, MatMut, MatRef};
use dpar2_parallel::ThreadPool;
use std::cell::RefCell;

thread_local! {
    /// Per-thread packing buffers for the serial blocked path (one `MC×KC`
    /// A block, one `KC×NC` B block). Reusing them across calls makes the
    /// blocked GEMM allocation-free in steady state — the property the
    /// solvers' zero-allocation ALS iterations (tests/alloc_regression.rs)
    /// rest on.
    static PACK_BUFS: RefCell<(Vec<f64>, Vec<f64>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Rows per register tile (microkernel height).
pub const MR: usize = 6;
/// Columns per register tile (microkernel width).
pub const NR: usize = 8;
/// Rows of C per packed A block — also the parallel fan-out unit.
const MC: usize = 120;
/// Depth (inner dimension) per packed block; `KC·NR` doubles fit in L1.
const KC: usize = 256;
/// Columns of C per packed B block; `KC·NC` doubles stay L2-resident.
const NC: usize = 512;

/// Transpose marker for one GEMM operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    /// Use the operand as stored.
    N,
    /// Use the operand transposed (without materializing the transpose).
    T,
}

impl Trans {
    /// Logical `(rows, cols)` of `op(m)`.
    #[inline]
    fn dims(self, m: MatRef<'_>) -> (usize, usize) {
        match self {
            Trans::N => (m.rows(), m.cols()),
            Trans::T => (m.cols(), m.rows()),
        }
    }
}

/// Element `op(m)[i, j]` (debug-asserted bounds via `MatRef::at`).
#[inline(always)]
fn at(m: MatRef<'_>, t: Trans, i: usize, j: usize) -> f64 {
    match t {
        Trans::N => m.at(i, j),
        Trans::T => m.at(j, i),
    }
}

// ----------------------------------------------------------------------
// Dispatch threshold
// ----------------------------------------------------------------------

/// Minimum `m·n·k` product for the blocked path. Below this the packing
/// and buffer setup cost more than they save; the `R×R` products of the
/// compressed ALS iterations (R ≤ 20 or so) stay on the naive loops.
const BLOCKED_MIN_FLOPS: usize = 24 * 24 * 24;

/// True when `(m, n, k)` is large enough that the blocked path wins.
/// Narrow outputs (`n < NR`) stay naive: the register tile would spend
/// most of its lanes on padding.
#[inline]
pub fn use_blocked(m: usize, n: usize, k: usize) -> bool {
    m >= MR && n >= NR && m * n * k >= BLOCKED_MIN_FLOPS
}

// ----------------------------------------------------------------------
// Microkernel
// ----------------------------------------------------------------------

/// Portable tile body: `acc[r][c] += ap[p·MR+r] · bp[p·NR+c]` for
/// `p < kcb`, with separate multiply and add (plain `mul_add` without
/// hardware FMA lowers to a slow libm call) — the auto-vectorized
/// fallback for CPUs without AVX2+FMA.
#[inline(always)]
fn micro_portable(kcb: usize, ap: &[f64], bp: &[f64], acc: &mut [[f64; NR]; MR]) {
    for (av, bv) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(kcb) {
        for r in 0..MR {
            let ar = av[r];
            for c in 0..NR {
                acc[r][c] += ar * bv[c];
            }
        }
    }
}

/// AVX2+FMA instantiation of the tile, written with explicit 256-bit
/// intrinsics: the 6×8 accumulator lives in twelve YMM registers, each
/// depth step broadcasts six A values and streams two B vectors through
/// `vfmadd231pd` — one fused multiply-add per element per depth step, in
/// ascending-`k` order, so vector width never changes which *sequence* of
/// operations produces an output entry, only how many lanes execute at
/// once (the fusion itself does round differently from the portable
/// `a·b + c` path, which is machine-dependent and covered by the
/// differential suite's ulp bounds).
/// (Explicit intrinsics because LLVM's SLP pass does not reliably fuse
/// the scalar `mul_add` tile into packed FMAs.) Only called after a
/// runtime CPU check (see [`run_micro`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(unsafe_code)] // contained SIMD exception; see module docs
unsafe fn micro_fma(kcb: usize, ap: &[f64], bp: &[f64], acc: &mut [[f64; NR]; MR]) {
    use core::arch::x86_64::{_mm256_fmadd_pd, _mm256_loadu_pd, _mm256_set1_pd, _mm256_storeu_pd};
    // Uphold the pointer arithmetic below even if a caller passes short
    // panels; the packing layer always provides exactly kcb·MR / kcb·NR.
    assert!(ap.len() >= kcb * MR && bp.len() >= kcb * NR, "micro_fma: short panels");
    let (a_ptr, b_ptr) = (ap.as_ptr(), bp.as_ptr());
    // SAFETY: all loads/stores below stay within the asserted panel bounds
    // and the fixed-size `acc` tile; f64 reads/writes are unaligned-safe
    // via the loadu/storeu intrinsics.
    unsafe {
        let mut t = core::array::from_fn::<_, MR, _>(|r| {
            [_mm256_loadu_pd(acc[r].as_ptr()), _mm256_loadu_pd(acc[r].as_ptr().add(4))]
        });
        for p in 0..kcb {
            let b0 = _mm256_loadu_pd(b_ptr.add(p * NR));
            let b1 = _mm256_loadu_pd(b_ptr.add(p * NR + 4));
            for (r, tr) in t.iter_mut().enumerate() {
                let a = _mm256_set1_pd(*a_ptr.add(p * MR + r));
                tr[0] = _mm256_fmadd_pd(a, b0, tr[0]);
                tr[1] = _mm256_fmadd_pd(a, b1, tr[1]);
            }
        }
        for (r, tr) in t.iter().enumerate() {
            _mm256_storeu_pd(acc[r].as_mut_ptr(), tr[0]);
            _mm256_storeu_pd(acc[r].as_mut_ptr().add(4), tr[1]);
        }
    }
}

/// Cached runtime CPU-feature probe for the fused microkernel.
#[inline]
fn fma_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Runs one register tile through the best available microkernel.
#[inline]
fn run_micro(kcb: usize, ap: &[f64], bp: &[f64], acc: &mut [[f64; NR]; MR]) {
    #[cfg(target_arch = "x86_64")]
    if fma_available() {
        // SAFETY: `fma_available` verified AVX2 and FMA support on this CPU,
        // which is the only precondition of the `#[target_feature]` fn.
        #[allow(unsafe_code)]
        unsafe {
            micro_fma(kcb, ap, bp, acc)
        };
        return;
    }
    micro_portable(kcb, ap, bp, acc);
}

// ----------------------------------------------------------------------
// Packing
// ----------------------------------------------------------------------

/// Packs the `mcb × kcb` block of `op(a)` starting at `(ic, pc)` into
/// `MR`-row panels: `buf[panel·(MR·kcb) + p·MR + r] = op(a)[ic+panel·MR+r,
/// pc+p]`, zero-padding rows past `mcb`.
fn pack_a(
    a: MatRef<'_>,
    ta: Trans,
    ic: usize,
    mcb: usize,
    pc: usize,
    kcb: usize,
    buf: &mut Vec<f64>,
) {
    let panels = mcb.div_ceil(MR);
    buf.clear();
    buf.reserve(panels * MR * kcb);
    for panel in 0..panels {
        let row0 = ic + panel * MR;
        let live = MR.min(ic + mcb - row0);
        for p in 0..kcb {
            for r in 0..MR {
                buf.push(if r < live { at(a, ta, row0 + r, pc + p) } else { 0.0 });
            }
        }
    }
}

/// Packs the `kcb × ncb` block of `op(b)` starting at `(pc, jc)` into
/// `NR`-column panels: `buf[panel·(NR·kcb) + p·NR + c] = op(b)[pc+p,
/// jc+panel·NR+c]`, zero-padding columns past `ncb`.
fn pack_b(
    b: MatRef<'_>,
    tb: Trans,
    pc: usize,
    kcb: usize,
    jc: usize,
    ncb: usize,
    buf: &mut Vec<f64>,
) {
    let panels = ncb.div_ceil(NR);
    buf.clear();
    buf.reserve(panels * NR * kcb);
    for panel in 0..panels {
        let col0 = jc + panel * NR;
        let live = NR.min(jc + ncb - col0);
        for p in 0..kcb {
            for c in 0..NR {
                buf.push(if c < live { at(b, tb, pc + p, col0 + c) } else { 0.0 });
            }
        }
    }
}

// ----------------------------------------------------------------------
// Macro kernel and drivers
// ----------------------------------------------------------------------

/// Sweeps the packed panels with register tiles, accumulating into
/// `c_panel` — the `mcb × ncb` destination sub-block of C, handed in as a
/// (generally strided) [`MatMut`] view.
fn macro_kernel(kcb: usize, apack: &[f64], bpack: &[f64], mut c_panel: MatMut<'_>) {
    let (mcb, ncb) = c_panel.shape();
    for (jp, bp) in bpack.chunks_exact(NR * kcb).enumerate() {
        let jr = jp * NR;
        let nrb = NR.min(ncb - jr);
        for (ip, ap) in apack.chunks_exact(MR * kcb).enumerate() {
            let ir = ip * MR;
            let mrb = MR.min(mcb - ir);
            let mut acc = [[0.0f64; NR]; MR];
            run_micro(kcb, ap, bp, &mut acc);
            for (r, acc_row) in acc.iter().enumerate().take(mrb) {
                let crow = &mut c_panel.row_mut(ir + r)[jr..jr + nrb];
                for (cv, &av) in crow.iter_mut().zip(&acc_row[..nrb]) {
                    *cv += av;
                }
            }
        }
    }
}

/// Shared driver for the serial and pooled blocked paths. `C` is resized
/// and zeroed, then filled as `op(a)·op(b)` panel by panel; when `pool`
/// has more than one thread, `MC`-row panels of C fan out over it.
fn gemm_blocked(
    ta: Trans,
    tb: Trans,
    a: MatRef<'_>,
    b: MatRef<'_>,
    c: &mut Mat,
    pool: Option<&ThreadPool>,
) {
    let (m, kk) = ta.dims(a);
    let (kb, n) = tb.dims(b);
    assert_eq!(kk, kb, "gemm: inner dimension mismatch ({m}x{kk} · {kb}x{n})");
    c.resize_zeroed(m, n);
    if m == 0 || n == 0 || kk == 0 {
        return;
    }

    let n_pc = kk.div_ceil(KC);
    let n_jc = n.div_ceil(NC);

    // Both branches below accumulate every C entry over ascending depth
    // blocks (`pc`), with identical per-block tile arithmetic — only the
    // loop nesting around that order differs — so the serial and pooled
    // paths are bit-identical for any thread count.
    match pool {
        Some(p) if p.threads() > 1 && m > MC => {
            // Pack every (jc, pc) block of op(B) once, shared read-only by
            // all row-panel workers (each worker sweeps every block, so
            // per-worker packing would multiply that work by the panel
            // count); indexed [jci * n_pc + pci].
            let bpacks: Vec<Vec<f64>> = (0..n_jc * n_pc)
                .map(|idx| {
                    let (jci, pci) = (idx / n_pc, idx % n_pc);
                    let (jc, pc) = (jci * NC, pci * KC);
                    let mut buf = Vec::new();
                    pack_b(b, tb, pc, KC.min(kk - pc), jc, NC.min(n - jc), &mut buf);
                    buf
                })
                .collect();
            // One MC-row panel of C: repack the matching A rows per depth
            // block and sweep. Each worker's chunk is reinterpreted as a
            // row-panel view; the `jc` column window is a strided
            // `MatMut` sub-block of it.
            let process_panel = |blk: usize, crows: &mut [f64]| {
                let ic = blk * MC;
                let mcb = MC.min(m - ic);
                let mut apack = Vec::new();
                for pci in 0..n_pc {
                    let pc = pci * KC;
                    let kcb = KC.min(kk - pc);
                    pack_a(a, ta, ic, mcb, pc, kcb, &mut apack);
                    for jci in 0..n_jc {
                        let jc = jci * NC;
                        let ncb = NC.min(n - jc);
                        let panel = MatMut::from_parts(mcb, n, n, crows).submatrix_mut(
                            0,
                            mcb,
                            jc,
                            jc + ncb,
                        );
                        macro_kernel(kcb, &apack, &bpacks[jci * n_pc + pci], panel);
                    }
                }
            };
            p.for_each_chunk_mut(c.data_mut(), MC * n, process_panel);
        }
        _ => {
            // Serial: bounded transient memory — exactly one KC×NC packed B
            // block and one MC×KC packed A block live at a time (the classic
            // Goto scheme), instead of a full padded copy of op(B). The two
            // buffers are thread-local and reused across calls, so the
            // serial blocked path performs no allocations in steady state.
            let cdata = c.data_mut();
            PACK_BUFS.with(|bufs| {
                let (apack, bpack) = &mut *bufs.borrow_mut();
                for pci in 0..n_pc {
                    let pc = pci * KC;
                    let kcb = KC.min(kk - pc);
                    for jci in 0..n_jc {
                        let jc = jci * NC;
                        let ncb = NC.min(n - jc);
                        pack_b(b, tb, pc, kcb, jc, ncb, bpack);
                        for (blk, crows) in cdata.chunks_mut(MC * n).enumerate() {
                            let ic = blk * MC;
                            let mcb = MC.min(m - ic);
                            pack_a(a, ta, ic, mcb, pc, kcb, apack);
                            let panel = MatMut::from_parts(mcb, n, n, crows).submatrix_mut(
                                0,
                                mcb,
                                jc,
                                jc + ncb,
                            );
                            macro_kernel(kcb, apack, bpack, panel);
                        }
                    }
                }
            });
        }
    }
}

/// `C = op(a)·op(b)` via the serial blocked path, at any size (no
/// dispatch). `c` is resized and overwritten. Operands are anything
/// view-convertible ([`AsMatRef`]): `&Mat`, [`MatRef`], strided sub-blocks.
///
/// # Panics
/// Panics on inner-dimension mismatch.
pub fn gemm_into(ta: Trans, tb: Trans, a: impl AsMatRef, b: impl AsMatRef, c: &mut Mat) {
    gemm_blocked(ta, tb, a.as_mat_ref(), b.as_mat_ref(), c, None);
}

/// `C = op(a)·op(b)` with `MC`-row panels of C fanned out over `pool`.
/// Bit-identical to [`gemm_into`] for every thread count (each panel runs
/// the same code on one worker; panel boundaries do not depend on the pool).
///
/// # Panics
/// Panics on inner-dimension mismatch.
pub fn gemm_pooled_into(
    ta: Trans,
    tb: Trans,
    a: impl AsMatRef,
    b: impl AsMatRef,
    c: &mut Mat,
    pool: &ThreadPool,
) {
    gemm_blocked(ta, tb, a.as_mat_ref(), b.as_mat_ref(), c, Some(pool));
}

/// IEEE-faithful naive reference: flat i-k-j triple loop, ascending-`k`
/// accumulation, no zero shortcuts (`0·∞ = NaN` propagates). This is the
/// oracle the differential suite compares the blocked paths against, and
/// the small-size path behind the [`Mat`] multiply dispatch.
///
/// # Panics
/// Panics on inner-dimension mismatch.
pub fn gemm_naive_into(ta: Trans, tb: Trans, a: impl AsMatRef, b: impl AsMatRef, c: &mut Mat) {
    let (a, b) = (a.as_mat_ref(), b.as_mat_ref());
    let (m, kk) = ta.dims(a);
    let (kb, n) = tb.dims(b);
    assert_eq!(kk, kb, "gemm: inner dimension mismatch ({m}x{kk} · {kb}x{n})");
    c.resize_zeroed(m, n);
    for i in 0..m {
        for p in 0..kk {
            let aip = at(a, ta, i, p);
            let crow = c.row_mut(i);
            match tb {
                Trans::N => {
                    for (cv, &bv) in crow.iter_mut().zip(b.row(p)) {
                        *cv += aip * bv;
                    }
                }
                Trans::T => {
                    for (j, cv) in crow.iter_mut().enumerate() {
                        *cv += aip * b.at(j, p);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat_fn(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f64) -> Mat {
        Mat::from_fn(rows, cols, f)
    }

    fn assert_close(a: &Mat, b: &Mat, tol: f64) {
        assert_eq!(a.shape(), b.shape());
        let dev = (a - b).max_abs();
        assert!(dev <= tol, "kernels deviate by {dev}");
    }

    #[test]
    fn blocked_matches_naive_across_block_boundaries() {
        // Sizes straddling MR/NR/MC/KC edges exercise every padding path.
        for &(m, n, k) in
            &[(1, 8, 1), (4, 8, 5), (5, 9, 7), (63, 65, 255), (64, 8, 256), (65, 17, 257)]
        {
            let a = mat_fn(m, k, |i, j| ((i * 7 + j * 3) as f64).sin());
            let b = mat_fn(k, n, |i, j| ((i * 5 + j * 11) as f64).cos());
            let mut naive = Mat::zeros(0, 0);
            let mut blocked = Mat::zeros(0, 0);
            gemm_naive_into(Trans::N, Trans::N, &a, &b, &mut naive);
            gemm_into(Trans::N, Trans::N, &a, &b, &mut blocked);
            assert_close(&naive, &blocked, 1e-12 * k as f64);
        }
    }

    #[test]
    fn all_transpose_variants_agree_with_materialized_transpose() {
        let a = mat_fn(13, 21, |i, j| (i as f64) - 0.5 * j as f64);
        let b = mat_fn(21, 9, |i, j| ((i + j) as f64).sqrt());
        let expected = a.matmul(&b).unwrap();
        let at_m = a.transpose();
        let bt_m = b.transpose();
        for (ta, tb, x, y) in [
            (Trans::N, Trans::N, &a, &b),
            (Trans::T, Trans::N, &at_m, &b),
            (Trans::N, Trans::T, &a, &bt_m),
            (Trans::T, Trans::T, &at_m, &bt_m),
        ] {
            let mut c = Mat::zeros(0, 0);
            gemm_into(ta, tb, x, y, &mut c);
            assert_close(&expected, &c, 1e-11);
        }
    }

    #[test]
    fn pooled_bitwise_equals_serial_blocked() {
        let a = mat_fn(130, 70, |i, j| ((i * 13 + j) as f64).sin());
        let b = mat_fn(70, 90, |i, j| ((i + 17 * j) as f64).cos());
        let mut serial = Mat::zeros(0, 0);
        gemm_into(Trans::N, Trans::N, &a, &b, &mut serial);
        for threads in [1, 2, 3, 4] {
            let pool = ThreadPool::new(threads);
            let mut pooled = Mat::zeros(0, 0);
            gemm_pooled_into(Trans::N, Trans::N, &a, &b, &mut pooled, &pool);
            assert_eq!(serial, pooled, "pooled GEMM diverged at {threads} threads");
        }
    }

    #[test]
    fn empty_operands() {
        for &(m, n, k) in &[(0, 5, 3), (5, 0, 3), (5, 3, 0), (0, 0, 0)] {
            let a = Mat::zeros(m, k);
            let b = Mat::zeros(k, n);
            let mut c = Mat::ones(7, 7);
            gemm_into(Trans::N, Trans::N, &a, &b, &mut c);
            assert_eq!(c.shape(), (m, n));
            assert!(c.data().iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn padding_lanes_do_not_leak_specials() {
        // 5×9 output: the ragged tile edges sit next to NaN/∞ entries; the
        // pad lanes compute garbage but must never be written back.
        let mut a = mat_fn(5, 3, |i, j| (i + j) as f64);
        let mut b = mat_fn(3, 9, |i, j| (i * 9 + j) as f64);
        a.set(4, 2, f64::INFINITY);
        b.set(2, 8, f64::NAN);
        let mut naive = Mat::zeros(0, 0);
        let mut blocked = Mat::zeros(0, 0);
        gemm_naive_into(Trans::N, Trans::N, &a, &b, &mut naive);
        gemm_into(Trans::N, Trans::N, &a, &b, &mut blocked);
        for (x, y) in naive.data().iter().zip(blocked.data()) {
            assert_eq!(x.is_nan(), y.is_nan());
            if !x.is_nan() {
                assert!((x - y).abs() < 1e-9 || x.is_infinite() && *x == *y);
            }
        }
    }

    #[test]
    fn dispatch_threshold_shape() {
        assert!(!use_blocked(3, 100, 100)); // too few rows for a tile
        assert!(!use_blocked(100, 4, 100)); // narrower than one tile
        assert!(!use_blocked(10, 10, 10)); // tiny
        assert!(use_blocked(64, 64, 64));
        assert!(use_blocked(512, 512, 512));
    }
}
