//! # dpar2-bench
//!
//! Harness utilities shared by the figure/table binaries in `src/bin/`.
//! Each binary regenerates one figure or table of the DPar2 paper's
//! evaluation section; see `DESIGN.md` §5 for the full experiment index and
//! `EXPERIMENTS.md` for recorded paper-vs-measured results.
//!
//! Common CLI flags (hand-rolled parser, no external deps):
//!
//! * `--scale <f64>`   — dataset scale factor (default 1.0; 0.25 ≈ smoke run)
//! * `--rank <usize>`  — target rank `R` (default 10, as in the paper)
//! * `--iters <usize>` — max ALS iterations (default 32, as in the paper)
//! * `--threads <usize>` — worker threads (default 1 on this 1-core host)
//! * `--seed <u64>`    — RNG seed (default 0)
//! * `--methods <list>` — comma-separated solver names (`dpar2,rd-als,…`
//!   via `Method::from_str`; default `all` = the paper's four)

use dpar2_baselines::{fit_with, Method};
use dpar2_core::{FitOptions, Parafac2Fit, Result};
use dpar2_tensor::IrregularTensor;
use std::collections::HashMap;

/// Parsed command-line options: `--key value` pairs.
#[derive(Debug, Clone, Default)]
pub struct Args {
    map: HashMap<String, String>,
}

impl Args {
    /// Parses `std::env::args()` into `--key value` pairs.
    ///
    /// # Panics
    /// Panics on a dangling `--key` without a value.
    pub fn parse() -> Self {
        Self::from_tokens(std::env::args().skip(1))
    }

    /// Parses an explicit token stream (testable entry point).
    ///
    /// # Panics
    /// Panics on a dangling `--key` without a value.
    pub fn from_tokens(tokens: impl IntoIterator<Item = String>) -> Self {
        let mut map = HashMap::new();
        let mut iter = tokens.into_iter();
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                let val = iter.next().unwrap_or_else(|| panic!("missing value for --{key}"));
                map.insert(key.to_string(), val);
            }
        }
        Args { map }
    }

    /// Typed lookup with default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T
    where
        T::Err: std::fmt::Debug,
    {
        match self.map.get(key) {
            Some(v) => v.parse().unwrap_or_else(|e| panic!("bad value for --{key}: {e:?}")),
            None => default,
        }
    }

    /// String lookup with default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.map.get(key).cloned().unwrap_or_else(|| default.to_string())
    }
}

/// The standard experiment parameters shared by the figure binaries.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Dataset scale factor.
    pub scale: f64,
    /// Target rank.
    pub rank: usize,
    /// Max ALS iterations.
    pub iters: usize,
    /// Worker threads.
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
}

impl HarnessConfig {
    /// Reads the standard flags from parsed [`Args`].
    pub fn from_args(args: &Args) -> Self {
        HarnessConfig {
            scale: args.get("scale", 1.0),
            rank: args.get("rank", 10),
            iters: args.get("iters", 32),
            threads: args.get("threads", 1),
            seed: args.get("seed", 0),
        }
    }

    /// The matching solver options.
    pub fn fit_options(&self) -> FitOptions<'static> {
        FitOptions::new(self.rank)
            .with_max_iterations(self.iters)
            .with_threads(self.threads)
            .with_seed(self.seed)
    }
}

/// Parses `--methods` into solver selections by name (`gemm_kernels`-style
/// comma lists, via `Method::from_str`). `all` (the default) is the
/// paper's four-method figure set; `with-ablation` adds the §III-C naive
/// strawman.
///
/// # Panics
/// Panics with the parse error's message (listing valid names) on an
/// unknown method.
pub fn methods_arg(args: &Args) -> Vec<Method> {
    match args.get_str("methods", "all").as_str() {
        "all" => Method::ALL.to_vec(),
        "with-ablation" => Method::WITH_ABLATION.to_vec(),
        list => list
            .split(',')
            .map(|tok| tok.trim().parse().unwrap_or_else(|e| panic!("--methods: {e}")))
            .collect(),
    }
}

/// Whether a sweep's table gets the `best-other/DPar2` ratio column:
/// DPar2 must lead the selection and have at least one competitor.
pub fn dpar2_leads(methods: &[Method]) -> bool {
    methods.first() == Some(&Method::Dpar2) && methods.len() > 1
}

/// Table header for a method sweep: label column(s), one column per
/// selected method, plus the DPar2-vs-best-other ratio when
/// [`dpar2_leads`].
pub fn sweep_header(labels: &[&'static str], methods: &[Method]) -> Vec<&'static str> {
    let mut header: Vec<&'static str> = labels.to_vec();
    header.extend(methods.iter().map(Method::name));
    if dpar2_leads(methods) {
        header.push("best-other/DPar2");
    }
    header
}

/// One measured run: method × dataset × rank with timing and fitness.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Method display name.
    pub method: &'static str,
    /// Dataset display name.
    pub dataset: String,
    /// Target rank.
    pub rank: usize,
    /// Total wall-clock seconds.
    pub total_secs: f64,
    /// Preprocessing seconds (0 when the method has no such phase).
    pub preprocess_secs: f64,
    /// Mean seconds per ALS iteration.
    pub iter_secs: f64,
    /// Iterations executed.
    pub iterations: usize,
    /// Fitness (§IV-A) on the input tensor.
    pub fitness: f64,
}

/// Runs one method on one tensor and packages the measurement.
///
/// # Errors
/// Propagates solver errors (invalid rank).
pub fn measure(
    method: Method,
    dataset: &str,
    tensor: &IrregularTensor,
    options: &FitOptions<'_>,
) -> Result<RunRecord> {
    let fit: Parafac2Fit = fit_with(method, tensor, options)?;
    Ok(RunRecord {
        method: method.name(),
        dataset: dataset.to_string(),
        rank: options.rank,
        total_secs: fit.timing.total_secs,
        preprocess_secs: fit.timing.preprocess_secs,
        iter_secs: fit.timing.mean_iteration_secs(),
        iterations: fit.iterations,
        fitness: fit.fitness(tensor),
    })
}

/// Renders records as an aligned text table.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let joined: Vec<String> =
            cells.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect();
        println!("  {}", joined.join("  "));
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    println!("  {}", "-".repeat(total));
    for row in rows {
        line(row);
    }
}

/// Formats seconds with sensible precision for tables.
pub fn fmt_secs(s: f64) -> String {
    if s < 0.01 {
        format!("{:.2}ms", s * 1e3)
    } else if s < 1.0 {
        format!("{:.0}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

/// Formats byte counts (8 bytes per f64) for the Fig. 10 table.
pub fn fmt_bytes(floats: usize) -> String {
    let bytes = floats as f64 * 8.0;
    if bytes >= 1e9 {
        format!("{:.2}GB", bytes / 1e9)
    } else if bytes >= 1e6 {
        format!("{:.2}MB", bytes / 1e6)
    } else {
        format!("{:.1}KB", bytes / 1e3)
    }
}

/// Sparkline-style ASCII bar for quick visual comparison in terminals.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_pairs() {
        let a = Args::from_tokens(["--scale", "0.5", "--rank", "15"].iter().map(|s| s.to_string()));
        assert_eq!(a.get("scale", 1.0), 0.5);
        assert_eq!(a.get("rank", 10usize), 15);
        assert_eq!(a.get("iters", 32usize), 32); // default
        assert_eq!(a.get_str("axis", "size"), "size");
    }

    #[test]
    #[should_panic(expected = "missing value")]
    fn dangling_flag_panics() {
        Args::from_tokens(["--rank"].iter().map(|s| s.to_string()));
    }

    #[test]
    fn harness_config_defaults() {
        let c = HarnessConfig::from_args(&Args::default());
        assert_eq!(c.rank, 10);
        assert_eq!(c.iters, 32);
        assert_eq!(c.scale, 1.0);
    }

    #[test]
    fn measure_runs_every_method() {
        let t = dpar2_data::planted_parafac2(&[20, 30, 16], 12, 3, 0.1, 5);
        let cfg = FitOptions::new(3).with_max_iterations(3);
        for m in Method::ALL {
            let rec = measure(m, "test", &t, &cfg).unwrap();
            assert!(rec.fitness > 0.5, "{} fitness {}", rec.method, rec.fitness);
            assert!(rec.total_secs > 0.0);
        }
    }

    #[test]
    fn methods_arg_selects_by_name() {
        let default = methods_arg(&Args::default());
        assert_eq!(default, Method::ALL.to_vec());
        let a = Args::from_tokens(["--methods", "dpar2, spartan"].iter().map(|s| s.to_string()));
        assert_eq!(methods_arg(&a), vec![Method::Dpar2, Method::Spartan]);
        let all = Args::from_tokens(["--methods", "with-ablation"].iter().map(|s| s.to_string()));
        assert_eq!(methods_arg(&all), Method::WITH_ABLATION.to_vec());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(0.005), "5.00ms");
        assert_eq!(fmt_secs(0.5), "500ms");
        assert_eq!(fmt_secs(2.0), "2.00s");
        assert_eq!(fmt_bytes(1000), "8.0KB");
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }
}
