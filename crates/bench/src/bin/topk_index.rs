//! Exact vs indexed top-k serving latency, recall@k, and peak memory —
//! the acceptance benchmark behind `BENCH_topk.json`.
//!
//! Three experiments over clustered single-row factor embeddings (the
//! Eq. 10 serving geometry):
//!
//! 1. **Latency percentiles, open loop.** For each `n` in `--n-list` the
//!    exact brute-force scan and the pruned [`EmbeddingIndex`] are driven
//!    by an *open-loop* arrival schedule: arrivals tick at a fixed rate
//!    (0.7× the mode's calibrated service rate, so the queue is stable but
//!    genuinely nonempty at times), and each query's latency is measured
//!    from its *scheduled arrival*, not from when the server got to it —
//!    queueing delay counts, as it does in a real service.
//! 2. **`nprobe` sweep.** The exactness knob's trade-off curve: recall@k
//!    and latency at probe depths from 1 to every partition (where the
//!    answer is bitwise-exact by construction).
//! 3. **Peak memory, `similarity_graph` vs `similarity_topk`.** The dense
//!    graph materializes two n×n matrices; the streaming top-k keeps
//!    O(n·k). A byte-exact peak-tracking allocator proves the ratio.
//!
//! ```text
//! cargo run -p dpar2-bench --release --bin topk_index
//! cargo run -p dpar2-bench --release --bin topk_index -- --n-list 10000 --queries 100
//! ```
//!
//! Flags: `--n-list` (comma list, default `10000,100000,1000000`), `--dim`
//! (10), `--k` (10), `--queries` (200), `--centers` (200), `--threads`
//! (number the index build may use, default 6), `--seed` (0),
//! `--mem-n` (3000), `--out` (`BENCH_topk.json` at the repo root).

// The peak-tracking allocator below implements the unsafe `GlobalAlloc`
// trait — the same carve-out from the workspace-wide `deny(unsafe_code)`
// as the root `alloc_regression` suite's counting allocator.
#![allow(unsafe_code)]

use dpar2_analysis::{
    select_top_k, similarity_graph, similarity_topk, squared_distance, EmbeddingIndex, IndexOptions,
};
use dpar2_bench::Args;
use dpar2_linalg::{Mat, MatRef};
use dpar2_parallel::ThreadPool;
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// System allocator wrapper tracking live bytes and their high-water mark.
struct PeakAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn track_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        track_alloc(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        track_alloc(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static PEAK_TRACKER: PeakAlloc = PeakAlloc;

/// Peak live bytes observed while running `f`, measured from the live
/// level at entry (so resident fixtures don't count).
fn peak_during<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let base = LIVE.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    let out = f();
    (out, PEAK.load(Ordering::Relaxed).saturating_sub(base))
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn uniform(state: &mut u64, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * ((splitmix64(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64))
}

/// `centers` Gaussian-ish blobs, `n` points total, row-major `n × dim` —
/// the clustered geometry the k-means partitioner targets (entities in
/// Eq. 10 workloads are far from uniform: similar stocks cluster).
fn clustered_points(n: usize, dim: usize, centers: usize, seed: u64) -> Vec<f64> {
    let mut state = seed ^ 0x1DE2_0000_BEEF;
    let centroids: Vec<f64> =
        (0..centers * dim).map(|_| uniform(&mut state, -10.0, 10.0)).collect();
    let mut data = Vec::with_capacity(n * dim);
    for i in 0..n {
        let c = i % centers;
        for j in 0..dim {
            data.push(centroids[c * dim + j] + uniform(&mut state, -0.5, 0.5));
        }
    }
    data
}

/// Exact Eq. 10 top-k by brute-force scan — the reference both for
/// latency (the "exact" serving mode) and for recall ground truth.
fn exact_top_k(
    points: &[f64],
    dim: usize,
    query: &[f64],
    gamma: f64,
    k: usize,
    exclude: usize,
) -> Vec<(usize, f64)> {
    let n = points.len() / dim;
    let pairs: Vec<(usize, f64)> = (0..n)
        .filter(|&i| i != exclude)
        .map(|i| (i, (-gamma * squared_distance(query, &points[i * dim..(i + 1) * dim])).exp()))
        .collect();
    select_top_k(pairs, k)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

struct LatencyStats {
    mean_us: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
}

/// Runs `queries` executions of `serve` under an open-loop arrival
/// schedule at 0.7× the calibrated service rate. Latencies are measured
/// from scheduled arrival to completion.
fn open_loop(queries: usize, targets: &[usize], mut serve: impl FnMut(usize)) -> LatencyStats {
    // Calibrate the mean service time on a small closed-loop prefix.
    let calibrate = queries.clamp(1, 20);
    let t0 = Instant::now();
    for q in 0..calibrate {
        serve(targets[q % targets.len()]);
    }
    let service = t0.elapsed().as_secs_f64() / calibrate as f64;
    let interarrival = Duration::from_secs_f64((service / 0.7).max(1e-7));

    let mut lat_us = Vec::with_capacity(queries);
    let start = Instant::now();
    for q in 0..queries {
        let arrival = interarrival * q as u32;
        // Open loop: the next arrival is scheduled regardless of whether
        // the previous query finished; if the server ran ahead, idle.
        while start.elapsed() < arrival {
            std::hint::spin_loop();
        }
        serve(targets[q % targets.len()]);
        lat_us.push((start.elapsed() - arrival).as_secs_f64() * 1e6);
    }
    let mean_us = lat_us.iter().sum::<f64>() / lat_us.len() as f64;
    lat_us.sort_unstable_by(f64::total_cmp);
    LatencyStats {
        mean_us,
        p50_us: percentile(&lat_us, 0.50),
        p95_us: percentile(&lat_us, 0.95),
        p99_us: percentile(&lat_us, 0.99),
    }
}

fn json_latency(out: &mut String, label: &str, s: &LatencyStats) {
    let _ = write!(
        out,
        "\"{label}\": {{\"mean_us\": {:.2}, \"p50_us\": {:.2}, \"p95_us\": {:.2}, \
         \"p99_us\": {:.2}}}",
        s.mean_us, s.p50_us, s.p95_us, s.p99_us
    );
}

fn main() {
    let args = Args::parse();
    let n_list: Vec<usize> = args
        .get_str("n-list", "10000,100000,1000000")
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let dim = args.get("dim", 10usize).max(1);
    let k = args.get("k", 10usize).max(1);
    let queries = args.get("queries", 200usize).max(1);
    let centers = args.get("centers", 200usize).max(1);
    let threads = args.get("threads", 6usize).max(1);
    let seed = args.get("seed", 0u64);
    let mem_n = args.get("mem-n", 3000usize).max(2);
    let default_out = format!("{}/../../BENCH_topk.json", env!("CARGO_MANIFEST_DIR"));
    let out_path = args.get_str("out", &default_out);
    let gamma = 0.01f64;

    let pool = ThreadPool::new(threads);
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"topk_index\",\n");
    let _ = write!(
        json,
        "  \"config\": {{\"dim\": {dim}, \"k\": {k}, \"queries\": {queries}, \
         \"centers\": {centers}, \"threads\": {threads}, \"gamma\": {gamma}, \
         \"seed\": {seed}}},\n  \"scales\": [\n"
    );

    println!("== topk_index: exact vs pruned-index serving, dim {dim}, top-{k}, gamma {gamma} ==");
    let mut acceptance: Option<(usize, f64, f64)> = None;
    for (ni, &n) in n_list.iter().enumerate() {
        println!("\n-- n = {n} --");
        let points = clustered_points(n, dim, centers, seed);
        let row = |i: usize| &points[i * dim..(i + 1) * dim];

        let t_build = Instant::now();
        let index = EmbeddingIndex::build(
            MatRef::from_slice(n, dim, &points),
            &IndexOptions::default(),
            &pool,
        );
        let build_s = t_build.elapsed().as_secs_f64();
        println!(
            "   build: {:.2}s  ({} partitions, default nprobe {})",
            build_s,
            index.num_partitions(),
            index.default_nprobe()
        );

        // Deterministic query targets spread across the blobs.
        let mut state = seed ^ (n as u64).wrapping_mul(0x9E37);
        let targets: Vec<usize> =
            (0..queries).map(|_| (splitmix64(&mut state) % n as u64) as usize).collect();

        // Ground truth for recall on a fixed subset of the targets.
        let recall_queries: Vec<usize> = targets.iter().copied().take(50).collect();
        let truth: Vec<Vec<(usize, f64)>> = recall_queries
            .iter()
            .map(|&t| exact_top_k(&points, dim, row(t), gamma, k, t))
            .collect();
        let recall_at = |nprobe: usize| -> f64 {
            let mut total = 0.0;
            for (qi, &t) in recall_queries.iter().enumerate() {
                let approx = index.top_k_similar(row(t), gamma, k, nprobe, Some(t));
                let hit =
                    truth[qi].iter().filter(|(id, _)| approx.iter().any(|(a, _)| a == id)).count();
                total += hit as f64 / truth[qi].len().max(1) as f64;
            }
            total / recall_queries.len() as f64
        };

        let exact_stats = open_loop(queries, &targets, |t| {
            std::hint::black_box(exact_top_k(&points, dim, row(t), gamma, k, t));
        });
        println!(
            "   exact:   p50 {:9.1}us  p95 {:9.1}us  p99 {:9.1}us",
            exact_stats.p50_us, exact_stats.p95_us, exact_stats.p99_us
        );

        // nprobe sweep: 1 … num_partitions, log-spaced, always including
        // the default (the serving operating point) and full probe depth
        // (the bitwise-exact setting).
        let mut sweep: Vec<usize> = vec![1];
        let mut p = 1usize;
        while p < index.num_partitions() {
            p = (p * 4).min(index.num_partitions());
            sweep.push(p);
        }
        sweep.push(index.default_nprobe());
        sweep.sort_unstable();
        sweep.dedup();

        let _ = write!(
            json,
            "    {{\"n\": {n}, \"build_seconds\": {build_s:.3}, \"partitions\": {}, \
             \"default_nprobe\": {}, ",
            index.num_partitions(),
            index.default_nprobe()
        );
        json_latency(&mut json, "exact", &exact_stats);
        json.push_str(", \"nprobe_sweep\": [\n");

        for (si, &nprobe) in sweep.iter().enumerate() {
            let stats = open_loop(queries, &targets, |t| {
                std::hint::black_box(index.top_k_similar(row(t), gamma, k, nprobe, Some(t)));
            });
            let rec = recall_at(nprobe);
            let speedup = exact_stats.mean_us / stats.mean_us;
            let is_default = nprobe == index.default_nprobe();
            println!(
                "   nprobe {nprobe:5}: p50 {:9.1}us  p95 {:9.1}us  p99 {:9.1}us  \
                 recall@{k} {rec:.3}  speedup {speedup:5.1}x{}",
                stats.p50_us,
                stats.p95_us,
                stats.p99_us,
                if is_default { "  <- default" } else { "" }
            );
            json.push_str("      {");
            let _ = write!(json, "\"nprobe\": {nprobe}, \"recall_at_k\": {rec:.4}, ");
            json_latency(&mut json, "latency", &stats);
            let _ = write!(json, ", \"speedup_vs_exact\": {speedup:.2}}}");
            json.push_str(if si + 1 < sweep.len() { ",\n" } else { "\n" });
            if is_default && n >= *n_list.iter().max().unwrap_or(&0) {
                acceptance = Some((n, speedup, rec));
            }
        }
        json.push_str("    ]}");
        json.push_str(if ni + 1 < n_list.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");

    // Peak-memory differential: dense similarity graph (two n×n matrices)
    // vs streaming top-k (O(n·k) output, one reused candidate buffer).
    println!("\n-- peak memory at n = {mem_n} (similarity_graph vs similarity_topk) --");
    let factors: Vec<Mat> = {
        let pts = clustered_points(mem_n, dim, centers, seed ^ 0xFEED);
        (0..mem_n).map(|i| Mat::from_fn(1, dim, |_, j| pts[i * dim + j])).collect()
    };
    let refs: Vec<&Mat> = factors.iter().collect();
    let (graph, graph_peak) = peak_during(|| similarity_graph(&refs, gamma));
    drop(graph);
    let (topk, topk_peak) = peak_during(|| similarity_topk(&refs, gamma, k));
    let ratio = graph_peak as f64 / topk_peak.max(1) as f64;
    println!(
        "   graph: {:.1} MiB   topk: {:.3} MiB   ratio {ratio:.0}x",
        graph_peak as f64 / (1 << 20) as f64,
        topk_peak as f64 / (1 << 20) as f64
    );
    assert_eq!(topk.len(), mem_n, "similarity_topk must rank every entity");
    drop(topk);
    let _ = write!(
        json,
        "  \"peak_memory\": {{\"n\": {mem_n}, \"k\": {k}, \"graph_bytes\": {graph_peak}, \
         \"topk_bytes\": {topk_peak}, \"ratio\": {ratio:.1}}}"
    );

    if let Some((n, speedup, rec)) = acceptance {
        let _ = write!(
            json,
            ",\n  \"acceptance\": {{\"n\": {n}, \"speedup_at_default_nprobe\": {speedup:.2}, \
             \"recall_at_default_nprobe\": {rec:.4}}}"
        );
        println!(
            "\n   acceptance @ n={n}: {speedup:.1}x speedup, recall@{k} {rec:.3} at default nprobe"
        );
    }
    json.push_str("\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_topk.json");
    println!("\n   wrote {out_path}");
}
