//! Serving latency and throughput through the instrumented query engine —
//! the acceptance benchmark behind `BENCH_serve.json`.
//!
//! Everything this bench reports is read back out of a
//! [`dpar2_obs::MetricsRegistry`] that the serve stack records into — the
//! same telemetry a production deployment would scrape — rather than from
//! ad-hoc stopwatches around the call sites:
//!
//! 1. **Per-path latency percentiles, open loop.** One indexed model is
//!    published and queried under an *open-loop* arrival schedule
//!    (arrivals tick at 0.7× the calibrated service rate, so queueing is
//!    real but stable), in three phases that exercise each answer path:
//!    computed-indexed (distinct targets, pruned index), cache-hit (the
//!    same targets again), and computed-exact ([`QueryMode::Exact`] with
//!    the cache bypassed by distinct `k`). The engine's per-path
//!    histograms (`serve_query_latency_{indexed,cache_hit,exact}_ns`)
//!    provide p50/p90/p99/max; the cache hit rate comes from the
//!    `serve_query_cache_{hits,misses}_total` counters and the pruning
//!    efficiency from the partitions/candidates counters.
//! 2. **Ingest staleness.** A second, live model runs through an observed
//!    [`IngestWorker`] with background indexing; every batch's
//!    publish→index-ready window lands in `serve_ingest_staleness_ns`,
//!    reported as percentiles.
//! 3. **Throughput table.** The original closed-loop thread sweep (cold =
//!    cache cleared per pass, warm = pure hits) — kept for continuity with
//!    earlier revisions of this bench.
//!
//! The JSON artifact embeds the *entire* registry snapshot via
//! [`dpar2_obs::export::to_json`] (round-tripped through
//! [`dpar2_obs::export::from_json`] before writing, so the artifact is
//! guaranteed parseable), plus a small derived summary.
//!
//! ```text
//! cargo run -p dpar2-bench --release --bin serve_throughput -- --entities 64
//! ```
//!
//! Flags: `--entities` (64), `--days` (96), `--features` (24), `--rank`
//! (10), `--k` (10), `--queries` (200), `--reps` (4), `--max-threads` (8),
//! `--ingest-batches` (4), `--seed` (0), `--out` (`BENCH_serve.json` at
//! the repo root).

use dpar2_bench::{fmt_secs, print_table, Args};
use dpar2_core::{Dpar2, FitOptions, StreamingDpar2};
use dpar2_data::planted_parafac2;
use dpar2_obs::{export, HistogramSnapshot, MetricsRegistry, Snapshot};
use dpar2_parallel::ThreadPool;
use dpar2_serve::{
    build_and_install, IngestWorker, ModelMeta, ModelRegistry, QueryEngine, QueryMode,
    ServeMetrics, ServedModel,
};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Runs `queries` executions of `serve` under an open-loop arrival
/// schedule at 0.7× the calibrated service rate (arrivals are scheduled
/// regardless of completions; if the server runs ahead it idles).
fn open_loop(queries: usize, targets: &[usize], mut serve: impl FnMut(usize)) {
    let calibrate = queries.clamp(1, 20);
    let t0 = Instant::now();
    for q in 0..calibrate {
        serve(targets[q % targets.len()]);
    }
    let service = t0.elapsed().as_secs_f64() / calibrate as f64;
    let interarrival = Duration::from_secs_f64((service / 0.7).max(1e-7));

    let start = Instant::now();
    for q in 0..queries {
        let arrival = interarrival * q as u32;
        while start.elapsed() < arrival {
            std::hint::spin_loop();
        }
        serve(targets[q % targets.len()]);
    }
}

fn print_hist(label: &str, h: &HistogramSnapshot) {
    println!(
        "   {label:>10}: n {:5}  p50 {:9.1}us  p90 {:9.1}us  p99 {:9.1}us  max {:9.1}us",
        h.count,
        h.p50() as f64 / 1e3,
        h.p90() as f64 / 1e3,
        h.p99() as f64 / 1e3,
        h.max as f64 / 1e3,
    );
}

fn json_hist(out: &mut String, label: &str, h: &HistogramSnapshot) {
    let _ = write!(
        out,
        "\"{label}\": {{\"count\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \
         \"max_ns\": {}}}",
        h.count,
        h.p50(),
        h.p90(),
        h.p99(),
        h.max
    );
}

fn hist(snap: &Snapshot, name: &str) -> HistogramSnapshot {
    snap.histogram(name).cloned().unwrap_or_else(HistogramSnapshot::empty)
}

fn main() {
    let args = Args::parse();
    let entities = args.get("entities", 64usize).max(2);
    let days = args.get("days", 96usize);
    let features = args.get("features", 24usize);
    let rank = args.get("rank", 10usize).min(features).min(days);
    let k = args.get("k", 10usize);
    let queries = args.get("queries", 200usize).max(1);
    let reps = args.get("reps", 4usize).max(1);
    let max_threads = args.get("max-threads", 8usize).max(1);
    let ingest_batches = args.get("ingest-batches", 4usize).max(1);
    let seed = args.get("seed", 0u64);
    let default_out = format!("{}/../../BENCH_serve.json", env!("CARGO_MANIFEST_DIR"));
    let out_path = args.get_str("out", &default_out);

    println!(
        "== serve_throughput: {entities} entities x {days} days x {features} features, \
         rank {rank}, top-{k} ==\n"
    );

    let obs = MetricsRegistry::new();
    let metrics = ServeMetrics::register(&obs);

    // One indexed model for the query phases.
    let tensor = planted_parafac2(&vec![days; entities], features, rank, 0.1, seed);
    let fit = Dpar2.fit(&tensor, &FitOptions::new(rank).with_seed(seed)).expect("fit failed");
    let registry = Arc::new(ModelRegistry::new());
    let version = registry.publish_arc(
        "bench",
        ServedModel::from_parts(ModelMeta::new("bench").with_gamma(0.02), fit),
    );
    let pool = ThreadPool::new(2);
    build_and_install(&version, &dpar2_serve::IndexOptions::default(), &pool);
    let engine = QueryEngine::new(registry.clone(), 1).with_metrics(&metrics);

    // Deterministic target cycle covering every entity.
    let targets: Vec<usize> = (0..entities).collect();

    // Phase 1 — computed indexed answers: distinct (target, k) pairs per
    // pass would dodge the cache entirely, but the simplest guarantee is
    // clearing the cache inside the serve closure's pass boundary; here
    // every target repeats across the open-loop run, so clear per query.
    println!("-- open-loop phases ({queries} queries each) --");
    open_loop(queries, &targets, |t| {
        engine.clear_cache();
        engine.top_k_with_mode("bench", t, k, QueryMode::Indexed { nprobe: None }).unwrap();
    });
    // Phase 2 — cache hits: prime once, then every open-loop query hits.
    for &t in &targets {
        engine.top_k_with_mode("bench", t, k, QueryMode::Indexed { nprobe: None }).unwrap();
    }
    open_loop(queries, &targets, |t| {
        engine.top_k_with_mode("bench", t, k, QueryMode::Indexed { nprobe: None }).unwrap();
    });
    // Phase 3 — computed exact answers.
    open_loop(queries, &targets, |t| {
        engine.clear_cache();
        engine.top_k_with_mode("bench", t, k, QueryMode::Exact).unwrap();
    });

    // Ingest staleness: an observed worker with background indexing.
    println!("-- ingest: {ingest_batches} batches through an observed indexed worker --");
    let live =
        planted_parafac2(&vec![days; ingest_batches.max(2) * 2], features, rank, 0.1, seed ^ 1);
    let worker = IngestWorker::spawn_indexed_observed(
        StreamingDpar2::new(FitOptions::new(rank).with_seed(seed).with_max_iterations(8)),
        ModelMeta::new("live").with_gamma(0.02),
        registry.clone(),
        dpar2_serve::IndexOptions::default(),
        1,
        metrics.ingest,
    );
    let slices = live.to_slices();
    for chunk in slices.chunks(2).take(ingest_batches) {
        worker.append(chunk.to_vec());
        // Serialize batches so the coalescing builder indexes every
        // publish — each one then contributes a staleness sample.
        worker.flush_indexes();
    }
    worker.shutdown();

    let snap = obs.snapshot();
    let indexed_h = hist(&snap, "serve_query_latency_indexed_ns");
    let cache_h = hist(&snap, "serve_query_latency_cache_hit_ns");
    let exact_h = hist(&snap, "serve_query_latency_exact_ns");
    let staleness_h = hist(&snap, "serve_ingest_staleness_ns");
    print_hist("indexed", &indexed_h);
    print_hist("cache hit", &cache_h);
    print_hist("exact", &exact_h);
    print_hist("staleness", &staleness_h);

    let hits = snap.counter("serve_query_cache_hits_total").unwrap_or(0);
    let misses = snap.counter("serve_query_cache_misses_total").unwrap_or(0);
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    let scanned = snap.counter("serve_query_candidates_scanned_total").unwrap_or(0);
    let total = snap.counter("serve_query_candidates_total").unwrap_or(0);
    let pruned = 1.0 - scanned as f64 / total.max(1) as f64;
    println!(
        "   cache hit rate {hit_rate:.3} ({hits}/{})  index pruned {:.1}% of candidate work",
        hits + misses,
        pruned * 100.0
    );

    // Throughput table (closed loop, kept from the original bench).
    println!("\n-- closed-loop throughput sweep ({reps} passes per row) --");
    let batch: Vec<(usize, usize)> = (0..entities).map(|t| (t, k)).collect();
    let per_pass = entities * reps;
    let mut rows = Vec::new();
    let mut threads = 1;
    while threads <= max_threads {
        let sweep_engine = QueryEngine::new(registry.clone(), threads);
        let t0 = Instant::now();
        for _ in 0..reps {
            sweep_engine.clear_cache();
            let out = sweep_engine.top_k_batch("bench", &batch);
            assert!(out.iter().all(Result::is_ok), "cold query failed");
        }
        let cold = t0.elapsed().as_secs_f64();
        sweep_engine.top_k_batch("bench", &batch); // prime
        let t1 = Instant::now();
        for _ in 0..reps {
            let out = sweep_engine.top_k_batch("bench", &batch);
            assert!(out.iter().all(Result::is_ok), "warm query failed");
        }
        let warm = t1.elapsed().as_secs_f64();
        rows.push(vec![
            threads.to_string(),
            fmt_secs(cold),
            format!("{:.0}", per_pass as f64 / cold),
            fmt_secs(warm),
            format!("{:.0}", per_pass as f64 / warm),
        ]);
        threads *= 2;
    }
    print_table(&["threads", "cold", "cold q/s", "warm", "warm q/s"], &rows);

    // Persist: derived summary + the full exporter snapshot, round-tripped
    // first so a malformed artifact can never be written.
    let metrics_json = export::to_json(&snap);
    let reparsed = export::from_json(&metrics_json).expect("exporter JSON must parse");
    assert_eq!(reparsed, snap, "exporter JSON must round-trip exactly");

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"serve_throughput\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"entities\": {entities}, \"days\": {days}, \"features\": {features}, \
         \"rank\": {rank}, \"k\": {k}, \"queries\": {queries}, \
         \"ingest_batches\": {ingest_batches}, \"seed\": {seed}}},"
    );
    json.push_str("  \"latency\": {");
    json_hist(&mut json, "indexed", &indexed_h);
    json.push_str(", ");
    json_hist(&mut json, "cache_hit", &cache_h);
    json.push_str(", ");
    json_hist(&mut json, "exact", &exact_h);
    json.push_str("},\n  \"ingest\": {");
    json_hist(&mut json, "staleness", &staleness_h);
    json.push_str("},\n");
    let _ = writeln!(
        json,
        "  \"cache\": {{\"hits\": {hits}, \"misses\": {misses}, \"hit_rate\": {hit_rate:.4}}},\n  \
         \"pruning\": {{\"candidates_scanned\": {scanned}, \"candidates_total\": {total}, \
         \"fraction_pruned\": {pruned:.4}}},"
    );
    let _ = writeln!(json, "  \"metrics\": {metrics_json}\n}}");

    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");
    println!("\n   wrote {out_path}");
}
