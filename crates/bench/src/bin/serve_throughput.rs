//! Serving throughput: queries/second against thread count, cold cache vs
//! warm cache, through the `dpar2-serve` query engine.
//!
//! One model is fitted and published once; each thread-count row then runs
//! `--reps` passes over a batch that queries every entity once. The cold
//! column clears the result cache before every pass (every query computes);
//! the warm column primes the cache once and then measures pure cache-hit
//! serving.
//!
//! ```text
//! cargo run -p dpar2-bench --release --bin serve_throughput -- --entities 64
//! ```
//!
//! Flags: `--entities` (64), `--days` (96), `--features` (24), `--rank`
//! (10), `--k` (10), `--reps` (4), `--max-threads` (8), `--seed` (0).

use dpar2_bench::{fmt_secs, print_table, Args};
use dpar2_core::{Dpar2, FitOptions};
use dpar2_data::planted_parafac2;
use dpar2_serve::{ModelMeta, ModelRegistry, QueryEngine, ServedModel};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let entities = args.get("entities", 64usize).max(2);
    let days = args.get("days", 96usize);
    let features = args.get("features", 24usize);
    let rank = args.get("rank", 10usize).min(features).min(days);
    let k = args.get("k", 10usize);
    let reps = args.get("reps", 4usize).max(1);
    let max_threads = args.get("max-threads", 8usize).max(1);
    let seed = args.get("seed", 0u64);

    let tensor = planted_parafac2(&vec![days; entities], features, rank, 0.1, seed);
    let fit = Dpar2.fit(&tensor, &FitOptions::new(rank).with_seed(seed)).expect("fit failed");
    let registry = Arc::new(ModelRegistry::new());
    registry
        .publish("bench", ServedModel::from_parts(ModelMeta::new("bench").with_gamma(0.02), fit));

    // One query per entity; `reps` passes per measurement.
    let batch: Vec<(usize, usize)> = (0..entities).map(|t| (t, k)).collect();
    let total = entities * reps;
    println!(
        "== serve_throughput: {entities} entities x {days} days x {features} features, \
         rank {rank}, top-{k}, {reps} passes ==\n"
    );

    let mut rows = Vec::new();
    let mut threads = 1;
    while threads <= max_threads {
        let engine = QueryEngine::new(registry.clone(), threads);

        let t0 = Instant::now();
        for _ in 0..reps {
            engine.clear_cache();
            let out = engine.top_k_batch("bench", &batch);
            assert!(out.iter().all(Result::is_ok), "cold query failed");
        }
        let cold = t0.elapsed().as_secs_f64();

        engine.top_k_batch("bench", &batch); // prime
        let t1 = Instant::now();
        for _ in 0..reps {
            let out = engine.top_k_batch("bench", &batch);
            assert!(out.iter().all(Result::is_ok), "warm query failed");
        }
        let warm = t1.elapsed().as_secs_f64();

        let stats = engine.cache_stats();
        rows.push(vec![
            threads.to_string(),
            fmt_secs(cold),
            format!("{:.0}", total as f64 / cold),
            fmt_secs(warm),
            format!("{:.0}", total as f64 / warm),
            format!("{}/{}", stats.hits, stats.misses),
        ]);
        threads *= 2;
    }
    print_table(&["threads", "cold", "cold q/s", "warm", "warm q/s", "cache h/m"], &rows);
    println!("\n(cold = cache cleared before every pass; warm = all hits after priming.");
    println!(" Batched queries fan out over the dpar2-parallel pool per batch call.)");
}
