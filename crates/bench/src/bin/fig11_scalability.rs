//! Fig. 11 — scalability: (a) tensor size, (b) target rank, (c) threads.
//!
//! The synthetic tensors follow §IV-C: `tenrand`-style uniform dense
//! tensors with equal `I_k`. Paper sizes (up to 2000×2000×4000) are scaled
//! by `--scale` (default 0.1 → up to 200×200×400 on this 1-core host).
//!
//! ```text
//! cargo run -p dpar2-bench --release --bin fig11_scalability -- --axis size
//! cargo run -p dpar2-bench --release --bin fig11_scalability -- --axis rank --methods dpar2,rd-als
//! cargo run -p dpar2-bench --release --bin fig11_scalability -- --axis threads
//! ```

use dpar2_baselines::Method;
use dpar2_bench::{
    dpar2_leads, fmt_secs, measure, methods_arg, print_table, sweep_header, Args, HarnessConfig,
};
use dpar2_data::tenrand_irregular;
use dpar2_parallel::{greedy_partition, imbalance};

fn main() {
    let args = Args::parse();
    let mut cfg = HarnessConfig::from_args(&args);
    if !args.get_str("scale", "").is_empty() {
        cfg.scale = args.get("scale", 0.1);
    } else {
        cfg.scale = 0.1;
    }
    let methods = methods_arg(&args);
    let axis = args.get_str("axis", "size");
    match axis.as_str() {
        "size" => size_axis(&cfg, &methods),
        "rank" => rank_axis(&cfg, &methods),
        "threads" => thread_axis(&cfg),
        other => panic!("unknown --axis {other} (size|rank|threads)"),
    }
}

/// Fig. 11(a): the paper's five I×J×K grids, scaled.
fn size_axis(cfg: &HarnessConfig, methods: &[Method]) {
    let s = cfg.scale;
    let dims: Vec<(usize, usize, usize)> = [
        (1000, 1000, 1000),
        (1000, 1000, 2000),
        (2000, 1000, 2000),
        (2000, 2000, 2000),
        (2000, 2000, 4000),
    ]
    .iter()
    .map(|&(i, j, k)| {
        (
            ((i as f64 * s) as usize).max(cfg.rank + 2),
            ((j as f64 * s) as usize).max(cfg.rank + 2),
            ((k as f64 * s) as usize).max(4),
        )
    })
    .collect();

    println!("== Fig. 11(a): running time vs tensor size (scale {s}, R={}) ==\n", cfg.rank);
    let mut rows = Vec::new();
    for (i, j, k) in dims {
        let tensor = tenrand_irregular(i, j, k, cfg.seed);
        let total = (i * j * k) as f64;
        let mut cells = vec![format!("{i}x{j}x{k}"), format!("{:.1e}", total)];
        let mut times = Vec::new();
        for &method in methods {
            let rec = measure(method, "tenrand", &tensor, &cfg.fit_options()).expect("run failed");
            times.push(rec.total_secs);
            cells.push(fmt_secs(rec.total_secs));
        }
        if dpar2_leads(methods) {
            let best_other = times[1..].iter().cloned().fold(f64::INFINITY, f64::min);
            cells.push(format!("{:.1}x", best_other / times[0].max(1e-12)));
        }
        rows.push(cells);
    }
    print_table(&sweep_header(&["I x J x K", "entries"], methods), &rows);
    println!("\nPaper shape: DPar2 fastest at every size (paper: 15.3x at 1.6e10 entries)");
    println!("with a flatter slope than the competitors.");
}

/// Fig. 11(b): rank sweep 10..50 on the largest synthetic tensor.
fn rank_axis(cfg: &HarnessConfig, methods: &[Method]) {
    let s = cfg.scale;
    let (i, j, k) = (
        ((2000.0 * s) as usize).max(60),
        ((2000.0 * s) as usize).max(60),
        ((4000.0 * s) as usize).max(8),
    );
    let tensor = tenrand_irregular(i, j, k, cfg.seed);
    println!("== Fig. 11(b): running time vs rank on {i}x{j}x{k} (scale {s}) ==\n");
    let mut rows = Vec::new();
    for rank in [10usize, 20, 30, 40, 50] {
        if rank > i.min(j) {
            println!("  (skipping R={rank}: exceeds min(I,J)={})", i.min(j));
            continue;
        }
        let c = cfg.fit_options().with_rank(rank);
        let mut cells = vec![format!("{rank}")];
        let mut times = Vec::new();
        for &method in methods {
            let rec = measure(method, "tenrand", &tensor, &c).expect("run failed");
            times.push(rec.total_secs);
            cells.push(fmt_secs(rec.total_secs));
        }
        if dpar2_leads(methods) {
            let best_other = times[1..].iter().cloned().fold(f64::INFINITY, f64::min);
            cells.push(format!("{:.1}x", best_other / times[0].max(1e-12)));
        }
        rows.push(cells);
    }
    print_table(&sweep_header(&["R"], methods), &rows);
    println!("\nPaper shape: DPar2 fastest at every rank; the gap narrows as R grows");
    println!("(paper: 15.9x at R=10 down to 7.0x at R=50) because randomized SVD is");
    println!("designed for low target ranks.");
}

/// Fig. 11(c): thread sweep. On a 1-core host wall-clock speedup cannot
/// materialize, so the Algorithm-4 load balance (the quantity the threads
/// actually divide) is reported alongside.
fn thread_axis(cfg: &HarnessConfig) {
    let s = cfg.scale;
    let (i, j, k) = (
        ((2000.0 * s) as usize).max(60),
        ((2000.0 * s) as usize).max(60),
        ((4000.0 * s) as usize).max(8),
    );
    let tensor = tenrand_irregular(i, j, k, cfg.seed);
    println!("== Fig. 11(c): thread scalability of DPar2 on {i}x{j}x{k} ==\n");
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("  (host has {host} core(s); speedup columns are meaningful only when");
    println!("   threads <= cores — see EXPERIMENTS.md for the 1-core discussion)\n");

    let mut t1 = None;
    let mut rows = Vec::new();
    for threads in [1usize, 2, 4, 6, 8, 10] {
        let c = cfg.fit_options().with_threads(threads);
        let rec = measure(Method::Dpar2, "tenrand", &tensor, &c).expect("run failed");
        if threads == 1 {
            t1 = Some(rec.total_secs);
        }
        let speedup = t1.map(|t| t / rec.total_secs).unwrap_or(1.0);
        let part = greedy_partition(&tensor.row_dims(), threads);
        let imb = imbalance(&tensor.row_dims(), &part);
        rows.push(vec![
            format!("{threads}"),
            fmt_secs(rec.total_secs),
            format!("{speedup:.2}x"),
            format!("{:.3}", imb),
            format!("{:.2}x", threads as f64 / imb),
        ]);
    }
    print_table(&["threads", "total", "T1/TM", "greedy imbalance", "ideal speedup (T/imb)"], &rows);
    println!("\nPaper shape: near-linear scaling, 5.5x at 10 threads (slope 0.56). The");
    println!("'ideal speedup' column shows what Algorithm 4's partition supports on a");
    println!("machine with enough cores: imbalance stays ~1.0, so scaling is work-limited,");
    println!("not partition-limited.");
}
