//! Fig. 1 — the headline trade-off: total running time vs. fitness for all
//! four methods on all eight datasets, at target ranks 10, 15, 20.
//!
//! The paper's claims this experiment checks:
//! * DPar2 gives the best time-fitness trade-off on every dataset;
//! * speedups are largest on FMA/Urban (up to 6.0×), at least ~1.5×
//!   elsewhere, with comparable fitness everywhere.
//!
//! ```text
//! cargo run -p dpar2-bench --release --bin fig1_tradeoff -- --scale 0.5
//! # quick pass: --scale 0.25 --ranks 10 --methods dpar2,spartan
//! ```

use dpar2_baselines::Method;
use dpar2_bench::{measure, methods_arg, print_table, Args, HarnessConfig};
use dpar2_data::registry;

fn main() {
    let args = Args::parse();
    let cfg = HarnessConfig::from_args(&args);
    let methods = methods_arg(&args);
    let ranks: Vec<usize> = args
        .get_str("ranks", "10,15,20")
        .split(',')
        .map(|s| s.trim().parse().expect("bad --ranks list"))
        .collect();

    println!(
        "== Fig. 1: running time vs fitness (scale {}, ranks {ranks:?}, {} iters max) ==\n",
        cfg.scale, cfg.iters
    );

    for spec in registry() {
        let tensor = spec.generate_scaled(cfg.scale, cfg.seed);
        println!(
            "-- {} (max I_k = {}, J = {}, K = {}) --",
            spec.name,
            tensor.max_i(),
            tensor.j(),
            tensor.k()
        );
        let mut rows = Vec::new();
        let mut speedup_vs_best_baseline = Vec::new();
        for &rank in &ranks {
            let mut dpar2_time = None;
            let mut best_baseline: Option<f64> = None;
            for &method in &methods {
                let c = cfg.fit_options().with_rank(rank);
                match measure(method, spec.name, &tensor, &c) {
                    Ok(rec) => {
                        if method == Method::Dpar2 {
                            dpar2_time = Some(rec.total_secs);
                        } else {
                            best_baseline = Some(match best_baseline {
                                Some(b) => b.min(rec.total_secs),
                                None => rec.total_secs,
                            });
                        }
                        rows.push(vec![
                            format!("{rank}"),
                            rec.method.to_string(),
                            dpar2_bench::fmt_secs(rec.total_secs),
                            format!("{:.4}", rec.fitness),
                            format!("{}", rec.iterations),
                        ]);
                    }
                    Err(e) => rows.push(vec![
                        format!("{rank}"),
                        method.name().to_string(),
                        "-".into(),
                        format!("({e})"),
                        "-".into(),
                    ]),
                }
            }
            if let (Some(d), Some(b)) = (dpar2_time, best_baseline) {
                speedup_vs_best_baseline.push((rank, b / d));
            }
        }
        print_table(&["R", "method", "total", "fitness", "iters"], &rows);
        for (rank, s) in speedup_vs_best_baseline {
            println!("  R={rank}: DPar2 speedup vs best competitor = {s:.1}x");
        }
        println!();
    }
    println!("Paper shape to verify: DPar2 fastest on every dataset with comparable");
    println!("fitness; biggest gaps on the tall-J spectrogram datasets (FMA/Urban).");
}
