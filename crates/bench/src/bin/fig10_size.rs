//! Fig. 10 — size of preprocessed data: DPar2's compressed factors vs
//! RD-ALS's reduced slices vs the raw input tensor (what PARAFAC2-ALS and
//! SPARTan iterate over).
//!
//! ```text
//! cargo run -p dpar2-bench --release --bin fig10_size -- --scale 0.5
//! ```

use dpar2_baselines::RdAls;
use dpar2_bench::{fmt_bytes, print_table, Args, HarnessConfig};
use dpar2_core::compress;
use dpar2_data::registry;

fn main() {
    let args = Args::parse();
    let cfg = HarnessConfig::from_args(&args);
    println!("== Fig. 10: size of preprocessed data (scale {}, R={}) ==\n", cfg.scale, cfg.rank);

    let mut rows = Vec::new();
    for spec in registry() {
        let tensor = spec.generate_scaled(cfg.scale, cfg.seed);
        let input_floats = tensor.num_entries();
        let ct = compress(&tensor, &cfg.fit_options()).expect("compression failed");
        let dpar2_floats = ct.size_floats();
        let rd_floats = RdAls::preprocessed_size_floats(&tensor, cfg.rank);
        rows.push(vec![
            spec.name.to_string(),
            fmt_bytes(input_floats),
            fmt_bytes(dpar2_floats),
            fmt_bytes(rd_floats),
            format!("{:.1}x", input_floats as f64 / dpar2_floats as f64),
            format!("{:.1}x", input_floats as f64 / rd_floats as f64),
        ]);
    }
    print_table(
        &["Dataset", "input tensor", "DPar2", "RD-ALS", "input/DPar2", "input/RD-ALS"],
        &rows,
    );
    println!("\nPaper shape: compression ratio ≈ 1/(R/J + R^2/IJ + R/IK) — largest on the");
    println!("tall-J spectrogram and feature datasets (paper: up to 201x on FMA), smaller");
    println!("on the J=88 stock tensors (paper: 8.8x).");
}
