//! GEMM kernel-layer throughput: naive vs blocked vs pooled, GFLOP/s by
//! size and thread count.
//!
//! The kernel layer under `dpar2_linalg::Mat` is the innermost layer of the
//! whole reproduction — both compression stages, the compressed ALS
//! iterations, and every baseline run on it — so this binary is the ground
//! truth for "did the hot path get faster". It times square `n×n×n`
//! products on three paths:
//!
//! * `naive`   — the retained IEEE-faithful reference loops
//!   (`kernel::gemm_naive_into`), which are also the small-size dispatch
//!   target;
//! * `blocked` — the packed, register-tiled serial path
//!   (`kernel::gemm_into`);
//! * `pooled@T` — the blocked path with row panels fanned out over a
//!   `ThreadPool` of `T` workers (`kernel::gemm_pooled_into`).
//!
//! Flags: `--sizes 128,256,512` `--threads 1,2,4` `--variant nn|tn|nt|tt`
//! `--seed N`. To see the end-to-end effect on the paper's headline
//! experiment, pair with a before/after run of
//! `cargo run --release -p dpar2-bench --bin fig9_time`.

use dpar2_bench::{print_table, Args};
use dpar2_linalg::kernel::{self, Trans};
use dpar2_linalg::random::gaussian_mat;
use dpar2_linalg::Mat;
use dpar2_parallel::ThreadPool;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// Wall-clock per call, adaptively repeated so each measurement spends at
/// least ~0.2 s (one warm-up call first).
fn time_per_call(mut f: impl FnMut()) -> f64 {
    f(); // warm-up: page in buffers, settle the CPU-feature dispatch
    let mut reps = 1usize;
    loop {
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        let elapsed = t0.elapsed().as_secs_f64();
        if elapsed >= 0.2 || reps >= 1 << 20 {
            return elapsed / reps as f64;
        }
        reps = (reps * (0.25 / elapsed.max(1e-9)).ceil() as usize).clamp(reps + 1, 1 << 20);
    }
}

fn parse_list(args: &Args, key: &str, default: &str) -> Vec<usize> {
    args.get_str(key, default)
        .split(',')
        .map(|t| t.trim().parse().unwrap_or_else(|e| panic!("bad --{key} entry {t:?}: {e}")))
        .collect()
}

fn main() {
    let args = Args::parse();
    let sizes = parse_list(&args, "sizes", "128,256,512");
    let thread_counts = parse_list(&args, "threads", "1,2,4");
    let seed: u64 = args.get("seed", 0);
    let (ta, tb) = match args.get_str("variant", "nn").as_str() {
        "nn" => (Trans::N, Trans::N),
        "tn" => (Trans::T, Trans::N),
        "nt" => (Trans::N, Trans::T),
        "tt" => (Trans::T, Trans::T),
        other => panic!("unknown --variant {other:?} (nn|tn|nt|tt)"),
    };

    println!("GEMM kernel layer: {:?}·{:?}, f64, GFLOP/s (higher is better)", ta, tb);
    let mut rows: Vec<Vec<String>> = Vec::new();
    for &n in &sizes {
        let mut rng = StdRng::seed_from_u64(seed ^ n as u64);
        let a = gaussian_mat(n, n, &mut rng);
        let b = gaussian_mat(n, n, &mut rng);
        let gflop = 2.0 * (n as f64).powi(3) / 1e9;
        let mut c = Mat::zeros(n, n);

        let t_naive = time_per_call(|| {
            kernel::gemm_naive_into(ta, tb, &a, &b, &mut c);
            black_box(&c);
        });
        let t_blocked = time_per_call(|| {
            kernel::gemm_into(ta, tb, &a, &b, &mut c);
            black_box(&c);
        });
        rows.push(vec![
            n.to_string(),
            "naive".into(),
            format!("{:.2}", gflop / t_naive),
            "1.00x".into(),
        ]);
        rows.push(vec![
            n.to_string(),
            "blocked".into(),
            format!("{:.2}", gflop / t_blocked),
            format!("{:.2}x", t_naive / t_blocked),
        ]);
        for &t in &thread_counts {
            let pool = ThreadPool::new(t);
            let t_pooled = time_per_call(|| {
                kernel::gemm_pooled_into(ta, tb, &a, &b, &mut c, &pool);
                black_box(&c);
            });
            rows.push(vec![
                n.to_string(),
                format!("pooled@{t}"),
                format!("{:.2}", gflop / t_pooled),
                format!("{:.2}x", t_naive / t_pooled),
            ]);
        }

        // Strided-view operands: the same n×n product read out of the
        // interior of a larger host (stride n+16), i.e. what a zero-copy
        // sub-block of a tensor backing buffer looks like to the kernel.
        // The packing layer absorbs the stride, so this should track the
        // contiguous blocked path closely — the win the view layer banks is
        // skipping the materialization copy entirely.
        let host_a = gaussian_mat(n + 16, n + 16, &mut rng);
        let host_b = gaussian_mat(n + 16, n + 16, &mut rng);
        let va = host_a.subview(8, 8 + n, 8, 8 + n);
        let vb = host_b.subview(8, 8 + n, 8, 8 + n);
        let t_view = time_per_call(|| {
            kernel::gemm_into(ta, tb, va, vb, &mut c);
            black_box(&c);
        });
        rows.push(vec![
            n.to_string(),
            "blocked/strided".into(),
            format!("{:.2}", gflop / t_view),
            format!("{:.2}x", t_naive / t_view),
        ]);
        // Materialize-then-multiply: the pre-view-layer cost model (copy the
        // block out, multiply the contiguous copy).
        let t_copy = time_per_call(|| {
            let (ca, cb) = (va.to_mat(), vb.to_mat());
            kernel::gemm_into(ta, tb, &ca, &cb, &mut c);
            black_box(&c);
        });
        rows.push(vec![
            n.to_string(),
            "copy+blocked".into(),
            format!("{:.2}", gflop / t_copy),
            format!("{:.2}x", t_naive / t_copy),
        ]);
    }
    print_table(&["n", "kernel", "GFLOP/s", "vs naive"], &rows);
    println!();
    println!(
        "note: pooled speedup tracks physical cores; correctness across paths is \
         pinned by crates/linalg/tests/gemm_differential.rs (pooled is bit-identical \
         to blocked for every thread count)."
    );
}
