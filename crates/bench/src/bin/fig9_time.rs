//! Fig. 9 — (a) preprocessing time (DPar2 vs RD-ALS: the only two methods
//! with a preprocessing phase) and (b) time per iteration (all methods).
//!
//! ```text
//! cargo run -p dpar2-bench --release --bin fig9_time -- --scale 0.5 --phase both
//! # --phase preprocess | iteration | both
//! ```

use dpar2_baselines::{Method, RdAls};
use dpar2_bench::{fmt_secs, measure, print_table, Args, HarnessConfig};
use dpar2_core::{compress, Dpar2Config};
use dpar2_data::registry;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let cfg = HarnessConfig::from_args(&args);
    let phase = args.get_str("phase", "both");

    if phase == "preprocess" || phase == "both" {
        println!(
            "== Fig. 9(a): preprocessing time, DPar2 vs RD-ALS (scale {}, R={}) ==\n",
            cfg.scale, cfg.rank
        );
        let mut rows = Vec::new();
        for spec in registry() {
            let tensor = spec.generate_scaled(cfg.scale, cfg.seed);
            // DPar2: two-stage compression.
            let dcfg = Dpar2Config::new(cfg.rank).with_seed(cfg.seed).with_threads(cfg.threads);
            let t0 = Instant::now();
            let _ct = compress(&tensor, &dcfg).expect("compression failed");
            let dpar2_pre = t0.elapsed().as_secs_f64();
            // RD-ALS: concatenated truncated SVD.
            let rd = RdAls::new(cfg.als_config());
            let t1 = Instant::now();
            let _ = rd.preprocess(&tensor);
            let rd_pre = t1.elapsed().as_secs_f64();
            rows.push(vec![
                spec.name.to_string(),
                fmt_secs(dpar2_pre),
                fmt_secs(rd_pre),
                format!("{:.1}x", rd_pre / dpar2_pre.max(1e-12)),
            ]);
        }
        print_table(&["Dataset", "DPar2", "RD-ALS", "RD-ALS/DPar2"], &rows);
        println!("\nPaper shape: DPar2 preprocessing up to 10x faster; largest gaps on the");
        println!("large spectrogram tensors where RD-ALS's concatenated SVD dominates.\n");
    }

    if phase == "iteration" || phase == "both" {
        println!(
            "== Fig. 9(b): time per iteration, all methods (scale {}, R={}) ==\n",
            cfg.scale, cfg.rank
        );
        let mut rows = Vec::new();
        for spec in registry() {
            let tensor = spec.generate_scaled(cfg.scale, cfg.seed);
            let mut cells = vec![spec.name.to_string()];
            let mut iter_times = Vec::new();
            for method in Method::ALL {
                let rec =
                    measure(method, spec.name, &tensor, &cfg.als_config()).expect("method failed");
                iter_times.push(rec.iter_secs);
                cells.push(fmt_secs(rec.iter_secs));
            }
            // Speedup of DPar2 (index 0) vs the best competitor.
            let best_other = iter_times[1..].iter().cloned().fold(f64::INFINITY, f64::min);
            cells.push(format!("{:.1}x", best_other / iter_times[0].max(1e-12)));
            rows.push(cells);
        }
        print_table(
            &["Dataset", "DPar2", "RD-ALS", "PARAFAC2-ALS", "SPARTan", "best-other/DPar2"],
            &rows,
        );
        println!("\nPaper shape: DPar2 fastest per iteration everywhere (up to 10.3x vs the");
        println!("second best); RD-ALS pays for its true-error convergence check.");
    }
}
