//! Fig. 9 — (a) preprocessing time (DPar2 vs RD-ALS: the only two methods
//! with a preprocessing phase) and (b) time per iteration (all methods).
//!
//! ```text
//! cargo run -p dpar2-bench --release --bin fig9_time -- --scale 0.5 --phase both
//! # --phase preprocess | iteration | both; --methods dpar2,rd-als,…
//! ```

use dpar2_baselines::RdAls;
use dpar2_bench::{
    dpar2_leads, fmt_secs, measure, methods_arg, print_table, sweep_header, Args, HarnessConfig,
};
use dpar2_core::compress;
use dpar2_data::registry;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let cfg = HarnessConfig::from_args(&args);
    let methods = methods_arg(&args);
    let phase = args.get_str("phase", "both");

    if phase == "preprocess" || phase == "both" {
        println!(
            "== Fig. 9(a): preprocessing time, DPar2 vs RD-ALS (scale {}, R={}) ==\n",
            cfg.scale, cfg.rank
        );
        let mut rows = Vec::new();
        for spec in registry() {
            let tensor = spec.generate_scaled(cfg.scale, cfg.seed);
            // DPar2: two-stage compression.
            let opts = cfg.fit_options();
            let t0 = Instant::now();
            let _ct = compress(&tensor, &opts).expect("compression failed");
            let dpar2_pre = t0.elapsed().as_secs_f64();
            // RD-ALS: concatenated truncated SVD.
            let t1 = Instant::now();
            let _ = RdAls.preprocess(&tensor, cfg.rank);
            let rd_pre = t1.elapsed().as_secs_f64();
            rows.push(vec![
                spec.name.to_string(),
                fmt_secs(dpar2_pre),
                fmt_secs(rd_pre),
                format!("{:.1}x", rd_pre / dpar2_pre.max(1e-12)),
            ]);
        }
        print_table(&["Dataset", "DPar2", "RD-ALS", "RD-ALS/DPar2"], &rows);
        println!("\nPaper shape: DPar2 preprocessing up to 10x faster; largest gaps on the");
        println!("large spectrogram tensors where RD-ALS's concatenated SVD dominates.\n");
    }

    if phase == "iteration" || phase == "both" {
        println!(
            "== Fig. 9(b): time per iteration, all methods (scale {}, R={}) ==\n",
            cfg.scale, cfg.rank
        );
        let mut rows = Vec::new();
        for spec in registry() {
            let tensor = spec.generate_scaled(cfg.scale, cfg.seed);
            let mut cells = vec![spec.name.to_string()];
            let mut iter_times = Vec::new();
            for &method in &methods {
                let rec =
                    measure(method, spec.name, &tensor, &cfg.fit_options()).expect("method failed");
                iter_times.push(rec.iter_secs);
                cells.push(fmt_secs(rec.iter_secs));
            }
            if dpar2_leads(&methods) {
                // Speedup of DPar2 (index 0) vs the best competitor.
                let best_other = iter_times[1..].iter().cloned().fold(f64::INFINITY, f64::min);
                cells.push(format!("{:.1}x", best_other / iter_times[0].max(1e-12)));
            }
            rows.push(cells);
        }
        print_table(&sweep_header(&["Dataset"], &methods), &rows);
        println!("\nPaper shape: DPar2 fastest per iteration everywhere (up to 10.3x vs the");
        println!("second best); RD-ALS pays for its true-error convergence check.");
    }
}
