//! Fig. 9 — (a) preprocessing time (DPar2 vs RD-ALS: the only two methods
//! with a preprocessing phase) and (b) time per iteration (all methods),
//! plus the zero-copy-refactor memory columns: steady-state heap
//! **allocations per ALS iteration** (counted by a wrapping global
//! allocator) and process **peak RSS** after each method's fit.
//!
//! ```text
//! cargo run -p dpar2-bench --release --bin fig9_time -- --scale 0.5 --phase both
//! # --phase preprocess | iteration | both; --methods dpar2,rd-als,…
//! ```

// The counting allocator is the one deliberate `unsafe` in this binary
// (GlobalAlloc is an unsafe trait); it only increments a counter around the
// system allocator.
#![allow(unsafe_code)]

use dpar2_baselines::{fit_with_observer, Method, RdAls};
use dpar2_bench::{
    dpar2_leads, fmt_secs, methods_arg, print_table, sweep_header, Args, HarnessConfig,
};
use dpar2_core::compress;
use dpar2_core::{FitOptions, IterationEvent, StopReason};
use dpar2_data::registry;
use dpar2_tensor::IrregularTensor;
use std::alloc::{GlobalAlloc, Layout, System};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// System allocator wrapper counting `alloc`/`realloc` calls process-wide.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Peak resident set size (`VmHWM`) in kibibytes; 0 where unavailable.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// One observed fit: mean seconds per iteration plus mean steady-state
/// allocations per ALS iteration (the first iteration — which warms the
/// `Workspace` arena — is excluded; `None` if fewer than two iterations
/// ran). A single fit feeds both columns, so the timing and the allocation
/// count describe the same run.
fn measure_observed(
    method: Method,
    tensor: &IrregularTensor,
    options: &FitOptions<'_>,
) -> (f64, Option<f64>) {
    let mut snapshots: Vec<u64> = Vec::with_capacity(64);
    let mut observer = |_e: &IterationEvent| {
        snapshots.push(ALLOCS.load(Ordering::Relaxed));
        ControlFlow::<StopReason>::Continue(())
    };
    let fit = fit_with_observer(method, tensor, options, &mut observer).expect("method failed");
    let allocs = if snapshots.len() < 2 {
        None
    } else {
        let deltas: Vec<u64> = snapshots.windows(2).map(|w| w[1] - w[0]).collect();
        Some(deltas.iter().sum::<u64>() as f64 / deltas.len() as f64)
    };
    (fit.timing.mean_iteration_secs(), allocs)
}

fn main() {
    let args = Args::parse();
    let cfg = HarnessConfig::from_args(&args);
    let methods = methods_arg(&args);
    let phase = args.get_str("phase", "both");

    if phase == "preprocess" || phase == "both" {
        println!(
            "== Fig. 9(a): preprocessing time, DPar2 vs RD-ALS (scale {}, R={}) ==\n",
            cfg.scale, cfg.rank
        );
        let mut rows = Vec::new();
        for spec in registry() {
            let tensor = spec.generate_scaled(cfg.scale, cfg.seed);
            // DPar2: two-stage compression.
            let opts = cfg.fit_options();
            let t0 = Instant::now();
            let _ct = compress(&tensor, &opts).expect("compression failed");
            let dpar2_pre = t0.elapsed().as_secs_f64();
            // RD-ALS: concatenated truncated SVD.
            let t1 = Instant::now();
            let _ = RdAls.preprocess(&tensor, cfg.rank);
            let rd_pre = t1.elapsed().as_secs_f64();
            rows.push(vec![
                spec.name.to_string(),
                fmt_secs(dpar2_pre),
                fmt_secs(rd_pre),
                format!("{:.1}x", rd_pre / dpar2_pre.max(1e-12)),
            ]);
        }
        print_table(&["Dataset", "DPar2", "RD-ALS", "RD-ALS/DPar2"], &rows);
        println!("\nPaper shape: DPar2 preprocessing up to 10x faster; largest gaps on the");
        println!("large spectrogram tensors where RD-ALS's concatenated SVD dominates.\n");
    }

    if phase == "iteration" || phase == "both" {
        println!(
            "== Fig. 9(b): time per iteration + memory, all methods (scale {}, R={}) ==\n",
            cfg.scale, cfg.rank
        );
        let mut rows = Vec::new();
        for spec in registry() {
            let tensor = spec.generate_scaled(cfg.scale, cfg.seed);
            let mut cells = vec![spec.name.to_string()];
            let mut iter_times = Vec::new();
            let mut mem_cells = Vec::new();
            for &method in &methods {
                let (iter_secs, allocs) = measure_observed(method, &tensor, &cfg.fit_options());
                iter_times.push(iter_secs);
                cells.push(fmt_secs(iter_secs));
                // Memory columns: steady-state allocations per iteration
                // (zero for DPar2/RD-ALS at one thread — pinned by
                // tests/alloc_regression.rs) and peak RSS so far.
                let allocs = allocs.map_or_else(|| "n/a".to_string(), |a| format!("{a:.0}"));
                mem_cells.push(format!("{}|{}M", allocs, peak_rss_kb() / 1024));
            }
            if dpar2_leads(&methods) {
                // Speedup of DPar2 (index 0) vs the best competitor.
                let best_other = iter_times[1..].iter().cloned().fold(f64::INFINITY, f64::min);
                cells.push(format!("{:.1}x", best_other / iter_times[0].max(1e-12)));
            }
            cells.extend(mem_cells);
            rows.push(cells);
        }
        let mut header: Vec<String> =
            sweep_header(&["Dataset"], &methods).into_iter().map(str::to_string).collect();
        for &method in &methods {
            header.push(format!("{} alloc/it|peakRSS", method.name()));
        }
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        print_table(&header_refs, &rows);
        println!("\nPaper shape: DPar2 fastest per iteration everywhere (up to 10.3x vs the");
        println!("second best); RD-ALS pays for its true-error convergence check. The memory");
        println!("columns pin the view refactor: DPar2 and RD-ALS run 0 alloc/iteration in");
        println!("steady state (single-threaded); peak RSS is cumulative for the process.");
    }
}
