//! Open-loop load generation against the wire front-end — the acceptance
//! benchmark behind `BENCH_net.json`.
//!
//! Two phases, each against a real [`dpar2_net::NetServer`] over loopback
//! TCP with persistent binary-protocol clients:
//!
//! 1. **Latency.** `--clients` threads each run an open-loop arrival
//!    schedule (arrivals tick at 0.7× that client's calibrated service
//!    rate, so queueing is real but stable) of top-k queries against an
//!    observed server. Reported percentiles are the *server-side*
//!    `net_latency_topk_ns` histogram — decode-to-encode, the figure a
//!    production scrape would see — plus client-side round-trip
//!    percentiles measured at the socket.
//! 2. **Overload.** A deliberately starved server (one worker, one
//!    pending-connection slot) is hammered by reconnecting clients; every
//!    shed connection must be answered with a typed `Overloaded`. The
//!    phase reports the rejection rate and cross-checks it against the
//!    server's own `net_connections_rejected_total`.
//!
//! The JSON artifact embeds both registries' full snapshots via
//! [`dpar2_obs::export::to_json`], each round-tripped through
//! [`dpar2_obs::export::from_json`] before writing so a malformed
//! artifact can never be persisted.
//!
//! ```text
//! cargo run -p dpar2-bench --release --bin net_load -- --clients 4
//! ```
//!
//! Flags: `--entities` (48), `--days` (64), `--features` (16), `--rank`
//! (6), `--k` (10), `--queries` (300, per client), `--clients` (4),
//! `--attempts` (200, overload connects per client), `--seed` (0),
//! `--out` (`BENCH_net.json` at the repo root).

use dpar2_bench::Args;
use dpar2_core::{Dpar2, FitOptions};
use dpar2_data::planted_parafac2;
use dpar2_net::{ErrorCode, NetClient, NetServer, ServerConfig, WireMode};
use dpar2_obs::{export, Histogram, HistogramSnapshot, MetricsRegistry, Snapshot};
use dpar2_serve::{ModelMeta, ModelRegistry, QueryEngine, ServedModel};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Issues `queries` requests through `serve` under an open-loop arrival
/// schedule at 0.7× the calibrated service rate (arrivals are scheduled
/// regardless of completions; if the server runs ahead the client idles).
fn open_loop(queries: usize, targets: &[usize], mut serve: impl FnMut(usize)) {
    let calibrate = queries.clamp(1, 20);
    let t0 = Instant::now();
    for q in 0..calibrate {
        serve(targets[q % targets.len()]);
    }
    let service = t0.elapsed().as_secs_f64() / calibrate as f64;
    let interarrival = Duration::from_secs_f64((service / 0.7).max(1e-7));

    let start = Instant::now();
    for q in 0..queries {
        let arrival = interarrival * q as u32;
        while start.elapsed() < arrival {
            std::hint::spin_loop();
        }
        serve(targets[q % targets.len()]);
    }
}

fn print_hist(label: &str, h: &HistogramSnapshot) {
    println!(
        "   {label:>12}: n {:5}  p50 {:9.1}us  p90 {:9.1}us  p99 {:9.1}us  max {:9.1}us",
        h.count,
        h.p50() as f64 / 1e3,
        h.p90() as f64 / 1e3,
        h.p99() as f64 / 1e3,
        h.max as f64 / 1e3,
    );
}

fn json_hist(out: &mut String, label: &str, h: &HistogramSnapshot) {
    let _ = write!(
        out,
        "\"{label}\": {{\"count\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \
         \"max_ns\": {}}}",
        h.count,
        h.p50(),
        h.p90(),
        h.p99(),
        h.max
    );
}

fn hist(snap: &Snapshot, name: &str) -> HistogramSnapshot {
    snap.histogram(name).cloned().unwrap_or_else(HistogramSnapshot::empty)
}

/// Round-trips a snapshot through the JSON exporter and returns the text —
/// the artifact embeds only JSON that is proven to parse back bit-exactly.
fn checked_json(snap: &Snapshot) -> String {
    let json = export::to_json(snap);
    let reparsed = export::from_json(&json).expect("exporter JSON must parse");
    assert_eq!(&reparsed, snap, "exporter JSON must round-trip exactly");
    json
}

fn main() {
    let args = Args::parse();
    let entities = args.get("entities", 48usize).max(2);
    let days = args.get("days", 64usize);
    let features = args.get("features", 16usize);
    let rank = args.get("rank", 6usize).min(features).min(days);
    let k = args.get("k", 10usize);
    let queries = args.get("queries", 300usize).max(1);
    let clients = args.get("clients", 4usize).max(1);
    let attempts = args.get("attempts", 200usize).max(1);
    let seed = args.get("seed", 0u64);
    let default_out = format!("{}/../../BENCH_net.json", env!("CARGO_MANIFEST_DIR"));
    let out_path = args.get_str("out", &default_out);

    println!(
        "== net_load: {entities} entities x {days} days x {features} features, rank {rank}, \
         top-{k}, {clients} wire clients ==\n"
    );

    let tensor = planted_parafac2(&vec![days; entities], features, rank, 0.1, seed);
    let fit = Dpar2.fit(&tensor, &FitOptions::new(rank).with_seed(seed)).expect("fit failed");
    let registry = Arc::new(ModelRegistry::new());
    registry
        .publish("bench", ServedModel::from_parts(ModelMeta::new("bench").with_gamma(0.02), fit));

    // Phase 1 — open-loop latency against an observed server.
    println!("-- open-loop latency: {clients} clients x {queries} queries --");
    let obs = Arc::new(MetricsRegistry::new());
    let engine = Arc::new(QueryEngine::new(Arc::clone(&registry), 2));
    let server =
        NetServer::start_observed(engine, "127.0.0.1:0", ServerConfig::default(), Arc::clone(&obs))
            .expect("bind latency server");
    let addr = server.local_addr();
    // Client-side round-trip latency, recorded into the same registry so
    // the artifact carries both sides of the wire.
    let rtt: Histogram = obs.histogram("bench_client_rtt_ns");
    let targets: Vec<usize> = (0..entities).collect();

    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let targets = targets.clone();
            let rtt = rtt.clone();
            std::thread::spawn(move || {
                let mut client = NetClient::connect(addr).expect("connect");
                client.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                open_loop(queries, &targets, |t| {
                    let offset = (t + c) % targets.len();
                    let t0 = Instant::now();
                    let answer = client
                        .top_k_with_mode("bench", offset as u32, k as u32, WireMode::Exact)
                        .expect("transport")
                        .expect("typed answer");
                    rtt.record_duration(t0.elapsed());
                    assert!(!answer.neighbors.is_empty(), "empty ranking");
                });
            })
        })
        .collect();
    for w in workers {
        w.join().expect("latency client");
    }
    server.shutdown();

    let snap = obs.snapshot();
    let topk_h = hist(&snap, "net_latency_topk_ns");
    let rtt_h = hist(&snap, "bench_client_rtt_ns");
    let batch_h = hist(&snap, "net_batch_size");
    print_hist("server topk", &topk_h);
    print_hist("client rtt", &rtt_h);
    println!(
        "   {:>12}: mean batched queries per engine fan-out p50 {} (n {})",
        "batching",
        batch_h.p50(),
        batch_h.count
    );

    // Phase 2 — overload: starved server, reconnecting clients.
    println!("\n-- overload: 1 worker, 1 pending-connection slot, {clients} clients x {attempts} connects --");
    let overload_obs = Arc::new(MetricsRegistry::new());
    let engine = Arc::new(QueryEngine::new(Arc::clone(&registry), 2));
    let config = ServerConfig { workers: 1, pending_connections: 1, ..ServerConfig::default() };
    let server =
        NetServer::start_observed(engine, "127.0.0.1:0", config, Arc::clone(&overload_obs))
            .expect("bind overload server");
    let addr = server.local_addr();

    let hammers: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut served = 0u64;
                let mut rejected = 0u64;
                let mut dropped = 0u64;
                for i in 0..attempts {
                    let Ok(mut client) = NetClient::connect(addr) else {
                        dropped += 1;
                        continue;
                    };
                    client.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                    let target = ((c + i) % 4) as u32;
                    match client.top_k_with_mode("bench", target, 5, WireMode::Exact) {
                        Ok(Ok(_)) => served += 1,
                        Ok(Err(e)) if e.code == ErrorCode::Overloaded => rejected += 1,
                        Ok(Err(e)) => panic!("unexpected typed error under overload: {e}"),
                        // The rejection frame can lose the race against the
                        // connection teardown (RST discards it); count the
                        // shed connection without a typed verdict.
                        Err(_) => dropped += 1,
                    }
                }
                (served, rejected, dropped)
            })
        })
        .collect();
    let (mut served, mut rejected, mut dropped) = (0u64, 0u64, 0u64);
    for h in hammers {
        let (s, r, d) = h.join().expect("overload client");
        served += s;
        rejected += r;
        dropped += d;
    }
    server.shutdown();

    let overload_snap = overload_obs.snapshot();
    let server_rejected = overload_snap.counter("net_connections_rejected_total").unwrap_or(0);
    let rejection_rate = (rejected + dropped) as f64 / (served + rejected + dropped).max(1) as f64;
    println!(
        "   served {served}  rejected {rejected}  dropped {dropped} (rejection rate \
         {rejection_rate:.3}); server counted {server_rejected} shed connections"
    );
    assert!(
        rejected + dropped > 0,
        "overload phase produced no rejections — not actually overloaded"
    );
    assert!(
        server_rejected >= rejected,
        "server-side rejection counter ({server_rejected}) below client-observed ({rejected})"
    );

    // Persist: derived summary + both registries' full snapshots,
    // round-tripped before writing.
    let metrics_json = checked_json(&snap);
    let overload_json = checked_json(&overload_snap);

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"net_load\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"entities\": {entities}, \"days\": {days}, \"features\": {features}, \
         \"rank\": {rank}, \"k\": {k}, \"queries\": {queries}, \"clients\": {clients}, \
         \"attempts\": {attempts}, \"seed\": {seed}}},"
    );
    json.push_str("  \"latency\": {");
    json_hist(&mut json, "server_topk", &topk_h);
    json.push_str(", ");
    json_hist(&mut json, "client_rtt", &rtt_h);
    json.push_str("},\n");
    let _ = writeln!(
        json,
        "  \"overload\": {{\"served\": {served}, \"rejected\": {rejected}, \
         \"dropped\": {dropped}, \"rejection_rate\": {rejection_rate:.4}, \
         \"server_connections_rejected\": {server_rejected}}},"
    );
    let _ = writeln!(json, "  \"metrics\": {metrics_json},");
    let _ = writeln!(json, "  \"overload_metrics\": {overload_json}\n}}");

    std::fs::write(&out_path, &json).expect("write BENCH_net.json");
    println!("\n   wrote {out_path}");
}
