//! Table III — stocks similar to a target during a crash window
//! (the paper: Microsoft during COVID-19, Jan 2020 – Apr 2021), found two
//! ways: (a) k-nearest neighbours on Eq. 10 similarities, (b) Random Walk
//! with Restart on the similarity graph (Eq. 11–12).
//!
//! ```text
//! cargo run -p dpar2-bench --release --bin table3_similar_stocks -- --scale 0.5
//! ```

use dpar2_analysis::{rwr_scores, similarity_graph, top_k_neighbors, RwrConfig};
use dpar2_bench::{print_table, Args, HarnessConfig};
use dpar2_core::Dpar2;
use dpar2_data::stock::{generate, StockMarketConfig};

fn main() {
    let args = Args::parse();
    let cfg = HarnessConfig::from_args(&args);
    let n_stocks = ((240.0 * cfg.scale).round() as usize).max(24);
    let max_days = ((790.0 * cfg.scale).round() as usize).max(560);
    let gamma_arg = args.get_str("gamma", "auto");

    // 1) Build the market and restrict to the crash window (§IV-E2 step 1:
    //    "constructing the tensor included in the range").
    let market = StockMarketConfig::us_like(n_stocks, max_days, cfg.seed);
    let (crash_start, crash_end) = market.crash_window.expect("crash window configured");
    let ds = generate(&market);
    let windowed = ds.window(crash_start.saturating_sub(10), (crash_end + 10).min(max_days));
    println!(
        "== Table III: stocks similar to the target during the crash window ==\n\
         window days {}..{} of {max_days}, {} covering stocks\n",
        crash_start.saturating_sub(10),
        (crash_end + 10).min(max_days),
        windowed.tensor.k()
    );

    // 2) Decompose with DPar2 (§IV-E2 step 2).
    let fit = Dpar2.fit(&windowed.tensor, &cfg.fit_options()).expect("decomposition failed");
    println!("fitness on windowed tensor: {:.4}\n", fit.fitness(&windowed.tensor));

    // 3) Post-process the factors (§IV-E2 step 3). Target: the first
    //    Technology stock (the Microsoft stand-in).
    let target =
        windowed.meta.iter().position(|m| m.sector == 0).expect("no technology stock in window");
    let target_name = format!(
        "{} ({})",
        windowed.meta[target].ticker, windowed.sector_names[windowed.meta[target].sector]
    );
    println!("target stock: {target_name}\n");

    // γ: the paper fixes 0.01 for its data scale; "auto" picks the median
    // heuristic (median off-diagonal distance² maps to similarity 0.5) so
    // the similarity graph keeps dynamic range at any simulation scale.
    let factors: Vec<&dpar2_linalg::Mat> = fit.u.iter().collect();
    let gamma = match gamma_arg.as_str() {
        "auto" => {
            let mut d2 = Vec::new();
            for i in 0..factors.len() {
                for j in i + 1..factors.len() {
                    d2.push((factors[i] - factors[j]).fro_norm_sq());
                }
            }
            d2.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let median = d2[d2.len() / 2].max(1e-12);
            std::f64::consts::LN_2 / median
        }
        s => s.parse().expect("bad --gamma (number or 'auto')"),
    };
    println!("gamma = {gamma:.3e}\n");
    let (sim, adj) = similarity_graph(&factors, gamma);

    // (a) k-nearest neighbours.
    let knn = top_k_neighbors(&sim, target, 10);
    // (b) RWR with one-hot query (c = 0.15, 100 iterations — paper values).
    let mut q = vec![0.0; windowed.tensor.k()];
    q[target] = 1.0;
    let scores = rwr_scores(&adj, &q, &RwrConfig::default());
    let mut rwr_rank: Vec<(usize, f64)> =
        scores.iter().enumerate().filter(|&(i, _)| i != target).map(|(i, &s)| (i, s)).collect();
    rwr_rank.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    rwr_rank.truncate(10);

    let knn_set: std::collections::HashSet<usize> = knn.iter().map(|&(i, _)| i).collect();
    let rwr_set: std::collections::HashSet<usize> = rwr_rank.iter().map(|&(i, _)| i).collect();

    let mut rows = Vec::new();
    for rank_pos in 0..10 {
        let fmt = |list: &[(usize, f64)], other: &std::collections::HashSet<usize>| {
            list.get(rank_pos)
                .map(|&(i, s)| {
                    let m = &windowed.meta[i];
                    let uniq = if other.contains(&i) { " " } else { "*" };
                    format!("{uniq}{} [{}] {s:.3}", m.ticker, windowed.sector_names[m.sector])
                })
                .unwrap_or_default()
        };
        rows.push(vec![format!("{}", rank_pos + 1), fmt(&knn, &rwr_set), fmt(&rwr_rank, &knn_set)]);
    }
    print_table(&["rank", "(a) k-NN result", "(b) RWR result"], &rows);
    println!("\n('*' marks stocks appearing in only one of the two top-10 lists — the");
    println!("Table III blue-highlight analogue.)");

    // Sector concentration summary (the paper's headline observation:
    // mostly Technology-sector stocks in both lists).
    let sector_share = |set: &std::collections::HashSet<usize>| {
        let tech = set.iter().filter(|&&i| windowed.meta[i].sector == 0).count();
        tech as f64 / set.len().max(1) as f64
    };
    println!(
        "\nTechnology-sector share: k-NN {:.0}%, RWR {:.0}% (market base rate {:.0}%)",
        100.0 * sector_share(&knn_set),
        100.0 * sector_share(&rwr_set),
        100.0 / windowed.sector_names.len() as f64,
    );
    println!("Paper shape: both lists dominated by the target's sector, with a few");
    println!("multi-hop RWR-only entries.");
}
