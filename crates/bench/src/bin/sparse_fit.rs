//! Sparse vs densified PARAFAC2 fitting: time per iteration and peak
//! memory across densities — the acceptance benchmark behind
//! `BENCH_sparse.json`.
//!
//! For each density in `--densities`, a planted sparse PARAFAC2 model is
//! observed through a Bernoulli mask into CSR slices, then fitted three
//! ways:
//!
//! 1. **DPar2-sparse** on the CSR tensor directly (`fit_sparse`): the
//!    whole randomized compression stage runs at O(nnz) per pass, and the
//!    compressed ALS iterations are density-independent;
//! 2. **SPARTan-sparse** on the same CSR tensor (`fit_sparse`), per-ALS
//!    iteration cost proportional to `nnz`;
//! 3. **DPar2 (dense)** on the densified tensor — the measured region
//!    includes the densification itself, because materializing the dense
//!    backing buffer *is* the cost the sparse subsystem exists to avoid.
//!
//! The rsvd oversample is pinned to 1 (rank 4 → sketch 5, on the naive
//! GEMM dispatch path), so runs 1 and 3 draw identical sketches and their
//! final fit criteria are asserted **bitwise equal** — the peak-memory
//! and timing gap is pure representation, not a different answer.
//!
//! A byte-exact peak-tracking allocator (same carve-out as `topk_index`)
//! measures each fit's peak live bytes; the acceptance criterion is a
//! ≥10× DPar2-dense/DPar2-sparse peak ratio at the lowest density (10⁻³
//! by default). Input-shape gauges (`sparse_fit_input_nnz`,
//! `sparse_fit_input_density_ppm`, `sparse_fit_sparse_dispatch`) and fit
//! counters/histograms are recorded through a `MetricsObserver`, and the
//! artifact embeds the registry snapshot only after round-tripping it
//! through the JSON exporter.
//!
//! ```text
//! cargo run -p dpar2-bench --release --bin sparse_fit
//! cargo run -p dpar2-bench --release --bin sparse_fit -- --rows 400 --densities 0.1,0.01
//! ```
//!
//! Flags: `--densities` (comma list, default `0.1,0.01,0.001`), `--slices`
//! (6), `--rows` (base slice height, 1200), `--j` (128), `--rank` (4),
//! `--iters` (8), `--seed` (0), `--out` (`BENCH_sparse.json` at the repo
//! root). The default shape is sized so the dense tensor dominates the
//! dense-side peak: both sparse-side peaks are small factor/SVD workspaces,
//! and the asymptotic dense/sparse ratio is ≈ 1/density at low density.

// The peak-tracking allocator implements the unsafe `GlobalAlloc` trait —
// the same carve-out from the workspace-wide `deny(unsafe_code)` as the
// root `alloc_regression` suite's counting allocator.
#![allow(unsafe_code)]

use dpar2_baselines::SpartanSparse;
use dpar2_bench::Args;
use dpar2_core::{Dpar2, FitMetrics, FitOptions, MetricsObserver, Parafac2Fit, RsvdConfig};
use dpar2_data::planted_sparse;
use dpar2_obs::{export, MetricsRegistry, Snapshot};
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};

/// System allocator wrapper tracking live bytes and their high-water mark.
struct PeakAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn track_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        track_alloc(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        track_alloc(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static PEAK_TRACKER: PeakAlloc = PeakAlloc;

/// Peak live bytes observed while running `f`, measured from the live
/// level at entry (so resident fixtures don't count).
fn peak_during<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let base = LIVE.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    let out = f();
    (out, PEAK.load(Ordering::Relaxed).saturating_sub(base))
}

/// Round-trips a snapshot through the JSON exporter and returns the text —
/// the artifact embeds only JSON that is proven to parse back bit-exactly.
fn checked_json(snap: &Snapshot) -> String {
    let json = export::to_json(snap);
    let reparsed = export::from_json(&json).expect("exporter JSON must parse");
    assert_eq!(&reparsed, snap, "exporter JSON must round-trip exactly");
    json
}

fn mib(bytes: usize) -> f64 {
    bytes as f64 / (1 << 20) as f64
}

/// One measured run, reduced to what the report needs.
struct RunStats {
    iter_s: f64,
    preprocess_s: f64,
    peak: usize,
    iterations: usize,
    final_criterion: f64,
}

impl RunStats {
    fn new(fit: &Parafac2Fit, peak: usize) -> RunStats {
        RunStats {
            iter_s: fit.timing.iterations_secs / fit.iterations.max(1) as f64,
            preprocess_s: fit.timing.preprocess_secs,
            peak,
            iterations: fit.iterations,
            final_criterion: fit.criterion_trace.last().copied().unwrap_or(f64::NAN),
        }
    }

    fn print(&self, label: &str) {
        println!(
            "   {label:14} {:9.3} ms/iter  preprocess {:8.3} ms  peak {:8.2} MiB  \
             final criterion {:.6e}",
            self.iter_s * 1e3,
            self.preprocess_s * 1e3,
            mib(self.peak),
            self.final_criterion
        );
    }

    fn json(&self) -> String {
        format!(
            "{{\"iter_seconds\": {:.6}, \"preprocess_seconds\": {:.6}, \"peak_bytes\": {}, \
             \"iterations\": {}, \"final_criterion\": {:.12e}}}",
            self.iter_s, self.preprocess_s, self.peak, self.iterations, self.final_criterion
        )
    }
}

fn main() {
    let args = Args::parse();
    let densities: Vec<f64> = args
        .get_str("densities", "0.1,0.01,0.001")
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let slices = args.get("slices", 6usize).max(1);
    let rows = args.get("rows", 1200usize).max(8);
    let j = args.get("j", 128usize).max(2);
    let rank = args.get("rank", 4usize).clamp(1, j);
    let iters = args.get("iters", 8usize).max(1);
    let seed = args.get("seed", 0u64);
    let default_out = format!("{}/../../BENCH_sparse.json", env!("CARGO_MANIFEST_DIR"));
    let out_path = args.get_str("out", &default_out);

    // Irregular slice heights around the base, as in the paper's workloads.
    let row_dims: Vec<usize> = (0..slices).map(|k| rows + (k * 37) % (rows / 8 + 1)).collect();
    let total_rows: usize = row_dims.iter().sum();

    let registry = MetricsRegistry::new();
    let metrics = FitMetrics::register(&registry, "sparse_fit");

    println!(
        "== sparse_fit: {slices} slices x ~{rows} rows x {j} cols, rank {rank}, \
         {iters} iterations, single thread =="
    );

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"sparse_fit\",\n");
    let _ = write!(
        json,
        "  \"config\": {{\"slices\": {slices}, \"rows\": {rows}, \"total_rows\": {total_rows}, \
         \"j\": {j}, \"rank\": {rank}, \"iters\": {iters}, \"seed\": {seed}}},\n  \"densities\": [\n"
    );

    let mut acceptance: Option<(f64, f64)> = None;
    let min_density = densities.iter().copied().fold(f64::INFINITY, f64::min);
    for (di, &density) in densities.iter().enumerate() {
        let tensor =
            planted_sparse(&row_dims, j, rank, density, 0.05, seed.wrapping_add(di as u64));
        let nnz = tensor.nnz();
        println!("\n-- density {density} ({nnz} nonzeros of {} cells) --", tensor.num_cells());

        // threads = 1: the comparison is serial-vs-serial (thread
        // invariance of the sparse paths is pinned by the test suite).
        // Oversample 1 → sketch = rank + 1 ≤ 5 stays on the naive GEMM
        // dispatch path, the regime where DPar2-sparse is bitwise the
        // dense run.
        let opts = FitOptions::new(rank)
            .with_seed(seed ^ 0x5EED)
            .with_rsvd(RsvdConfig { rank, oversample: 1, power_iterations: 1 })
            .with_max_iterations(iters)
            .with_tolerance(0.0)
            .with_threads(1);

        let mut observer = MetricsObserver::new(&metrics);
        let (dpar2_sparse_fit, dpar2_sparse_peak) = peak_during(|| {
            Dpar2
                .fit_sparse_observed(&tensor, &opts, &mut observer)
                .expect("DPar2 sparse fit failed")
        });
        let dpar2_sparse = RunStats::new(&dpar2_sparse_fit, dpar2_sparse_peak);

        let (spartan_fit, spartan_peak) = peak_during(|| {
            SpartanSparse.fit_sparse(&tensor, &opts).expect("SPARTan sparse fit failed")
        });
        let spartan_sparse = RunStats::new(&spartan_fit, spartan_peak);

        // Dense DPar2: densification included in the measured region.
        let (dpar2_dense_fit, dpar2_dense_peak) = peak_during(|| {
            let dense = tensor.to_dense();
            Dpar2.fit(&dense, &opts).expect("DPar2 dense fit failed")
        });
        let dpar2_dense = RunStats::new(&dpar2_dense_fit, dpar2_dense_peak);

        // The sparse path must land on the *same answer*, bit for bit.
        assert_eq!(
            dpar2_sparse_fit.criterion_trace, dpar2_dense_fit.criterion_trace,
            "DPar2 sparse and dense criterion traces diverged at density {density}"
        );
        assert_eq!(
            dpar2_sparse.iterations, dpar2_dense.iterations,
            "DPar2 sparse and dense iteration counts diverged at density {density}"
        );

        let peak_ratio = dpar2_dense.peak as f64 / dpar2_sparse.peak.max(1) as f64;
        let spartan_peak_ratio = dpar2_dense.peak as f64 / spartan_sparse.peak.max(1) as f64;
        let iter_speedup = dpar2_dense.iter_s / dpar2_sparse.iter_s.max(1e-12);
        dpar2_sparse.print("DPar2-sparse:");
        spartan_sparse.print("SPARTan-sparse:");
        dpar2_dense.print("DPar2-dense:");
        println!(
            "   dense/sparse peak: DPar2 {peak_ratio:.1}x, SPARTan {spartan_peak_ratio:.1}x; \
             DPar2 time-per-iteration {iter_speedup:.2}x (criteria bitwise equal)"
        );

        json.push_str("    {");
        let _ = write!(
            json,
            "\"density\": {density}, \"nnz\": {nnz}, \
             \"dpar2_sparse\": {}, \"spartan_sparse\": {}, \"dpar2_dense\": {}, \
             \"peak_ratio\": {peak_ratio:.2}, \"spartan_peak_ratio\": {spartan_peak_ratio:.2}, \
             \"iter_speedup\": {iter_speedup:.3}, \"criteria_bitwise_equal\": true}}",
            dpar2_sparse.json(),
            spartan_sparse.json(),
            dpar2_dense.json()
        );
        json.push_str(if di + 1 < densities.len() { ",\n" } else { "\n" });

        if density == min_density {
            acceptance = Some((density, peak_ratio));
        }
    }
    json.push_str("  ],\n");

    if let Some((density, ratio)) = acceptance {
        let _ = writeln!(
            json,
            "  \"acceptance\": {{\"density\": {density}, \"peak_ratio\": {ratio:.2}, \
             \"solver\": \"dpar2\"}},"
        );
        println!("\n   acceptance @ density {density}: DPar2 dense/sparse peak ratio {ratio:.1}x");
        if density <= 2e-3 {
            assert!(
                ratio >= 10.0,
                "O(nnz) memory acceptance failed: DPar2 dense/sparse peak ratio {ratio:.1}x \
                 < 10x at density {density}"
            );
        }
    }

    // Telemetry snapshot (fit counters, iteration histograms, input-shape
    // and dispatch gauges), embedded only after the exporter round-trip
    // check.
    let snap = registry.snapshot();
    let _ = write!(json, "  \"metrics\": {}\n}}\n", checked_json(&snap));

    std::fs::write(&out_path, &json).expect("write BENCH_sparse.json");
    println!("   wrote {out_path}");
}
