//! Sparse vs densified PARAFAC2 fitting: time per iteration and peak
//! memory across densities — the acceptance benchmark behind
//! `BENCH_sparse.json`.
//!
//! For each density in `--densities`, a planted sparse PARAFAC2 model is
//! observed through a Bernoulli mask into CSR slices, then fitted twice:
//!
//! 1. **SPARTan-sparse** on the CSR tensor directly (`fit_sparse`), cost
//!    and memory proportional to `nnz`;
//! 2. **SPARTan (dense)** on the densified tensor — the measured region
//!    includes the densification itself, because materializing the dense
//!    backing buffer *is* the cost the sparse subsystem exists to avoid.
//!
//! A byte-exact peak-tracking allocator (same carve-out as `topk_index`)
//! measures each fit's peak live bytes; the acceptance criterion is a
//! ≥10× dense/sparse peak ratio at the lowest density (10⁻³ by default).
//! Input-shape gauges (`sparse_fit_input_nnz`, `sparse_fit_input_density_ppm`)
//! and fit counters/histograms are recorded through a `MetricsObserver`,
//! and the artifact embeds the registry snapshot only after round-tripping
//! it through the JSON exporter.
//!
//! ```text
//! cargo run -p dpar2-bench --release --bin sparse_fit
//! cargo run -p dpar2-bench --release --bin sparse_fit -- --rows 400 --densities 0.1,0.01
//! ```
//!
//! Flags: `--densities` (comma list, default `0.1,0.01,0.001`), `--slices`
//! (6), `--rows` (base slice height, 1200), `--j` (128), `--rank` (4),
//! `--iters` (8), `--seed` (0), `--out` (`BENCH_sparse.json` at the repo
//! root). The default shape is sized so the dense tensor dominates the
//! dense-side peak: the sparse-side peak is a fixed ~1 MiB of factor and
//! SVD workspace, and the asymptotic ratio is ≈ (J + R)/R.

// The peak-tracking allocator implements the unsafe `GlobalAlloc` trait —
// the same carve-out from the workspace-wide `deny(unsafe_code)` as the
// root `alloc_regression` suite's counting allocator.
#![allow(unsafe_code)]

use dpar2_baselines::{SpartanDense, SpartanSparse};
use dpar2_bench::Args;
use dpar2_core::{FitMetrics, FitOptions, MetricsObserver};
use dpar2_data::planted_sparse;
use dpar2_obs::{export, MetricsRegistry, Snapshot};
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};

/// System allocator wrapper tracking live bytes and their high-water mark.
struct PeakAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn track_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        track_alloc(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        track_alloc(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static PEAK_TRACKER: PeakAlloc = PeakAlloc;

/// Peak live bytes observed while running `f`, measured from the live
/// level at entry (so resident fixtures don't count).
fn peak_during<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let base = LIVE.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    let out = f();
    (out, PEAK.load(Ordering::Relaxed).saturating_sub(base))
}

/// Round-trips a snapshot through the JSON exporter and returns the text —
/// the artifact embeds only JSON that is proven to parse back bit-exactly.
fn checked_json(snap: &Snapshot) -> String {
    let json = export::to_json(snap);
    let reparsed = export::from_json(&json).expect("exporter JSON must parse");
    assert_eq!(&reparsed, snap, "exporter JSON must round-trip exactly");
    json
}

fn mib(bytes: usize) -> f64 {
    bytes as f64 / (1 << 20) as f64
}

fn main() {
    let args = Args::parse();
    let densities: Vec<f64> = args
        .get_str("densities", "0.1,0.01,0.001")
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let slices = args.get("slices", 6usize).max(1);
    let rows = args.get("rows", 1200usize).max(8);
    let j = args.get("j", 128usize).max(2);
    let rank = args.get("rank", 4usize).clamp(1, j);
    let iters = args.get("iters", 8usize).max(1);
    let seed = args.get("seed", 0u64);
    let default_out = format!("{}/../../BENCH_sparse.json", env!("CARGO_MANIFEST_DIR"));
    let out_path = args.get_str("out", &default_out);

    // Irregular slice heights around the base, as in the paper's workloads.
    let row_dims: Vec<usize> = (0..slices).map(|k| rows + (k * 37) % (rows / 8 + 1)).collect();
    let total_rows: usize = row_dims.iter().sum();

    let registry = MetricsRegistry::new();
    let metrics = FitMetrics::register(&registry, "sparse_fit");

    println!(
        "== sparse_fit: {slices} slices x ~{rows} rows x {j} cols, rank {rank}, \
         {iters} iterations, single thread =="
    );

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"sparse_fit\",\n");
    let _ = write!(
        json,
        "  \"config\": {{\"slices\": {slices}, \"rows\": {rows}, \"total_rows\": {total_rows}, \
         \"j\": {j}, \"rank\": {rank}, \"iters\": {iters}, \"seed\": {seed}}},\n  \"densities\": [\n"
    );

    let mut acceptance: Option<(f64, f64)> = None;
    let min_density = densities.iter().copied().fold(f64::INFINITY, f64::min);
    for (di, &density) in densities.iter().enumerate() {
        let tensor =
            planted_sparse(&row_dims, j, rank, density, 0.05, seed.wrapping_add(di as u64));
        let nnz = tensor.nnz();
        metrics.record_input_shape(nnz as u64, tensor.num_cells() as u64);
        println!("\n-- density {density} ({nnz} nonzeros of {} cells) --", tensor.num_cells());

        // threads = 1: the comparison is serial-vs-serial (thread
        // invariance of the sparse solver is pinned by the test suite).
        let opts = FitOptions::new(rank)
            .with_seed(seed ^ 0x5EED)
            .with_max_iterations(iters)
            .with_tolerance(0.0)
            .with_threads(1);

        let mut observer = MetricsObserver::new(&metrics);
        let (sparse_fit, sparse_peak) = peak_during(|| {
            SpartanSparse
                .fit_sparse_observed(&tensor, &opts, &mut observer)
                .expect("sparse fit failed")
        });
        let sparse_iter_s = sparse_fit.timing.iterations_secs / sparse_fit.iterations.max(1) as f64;

        // Dense baseline: densification included in the measured region.
        let (dense_fit, dense_peak) = peak_during(|| {
            let dense = tensor.to_dense();
            SpartanDense.fit(&dense, &opts).expect("dense fit failed")
        });
        let dense_iter_s = dense_fit.timing.iterations_secs / dense_fit.iterations.max(1) as f64;

        let peak_ratio = dense_peak as f64 / sparse_peak.max(1) as f64;
        let iter_speedup = dense_iter_s / sparse_iter_s.max(1e-12);
        println!(
            "   sparse: {:9.3} ms/iter  peak {:8.2} MiB   final criterion {:.3e}",
            sparse_iter_s * 1e3,
            mib(sparse_peak),
            sparse_fit.criterion_trace.last().copied().unwrap_or(f64::NAN)
        );
        println!(
            "   dense:  {:9.3} ms/iter  peak {:8.2} MiB   final criterion {:.3e}",
            dense_iter_s * 1e3,
            mib(dense_peak),
            dense_fit.criterion_trace.last().copied().unwrap_or(f64::NAN)
        );
        println!("   dense/sparse: peak {peak_ratio:.1}x, time-per-iteration {iter_speedup:.2}x");

        json.push_str("    {");
        let _ = write!(
            json,
            "\"density\": {density}, \"nnz\": {nnz}, \
             \"sparse\": {{\"iter_seconds\": {sparse_iter_s:.6}, \"peak_bytes\": {sparse_peak}, \
             \"iterations\": {}}}, \
             \"dense\": {{\"iter_seconds\": {dense_iter_s:.6}, \"peak_bytes\": {dense_peak}, \
             \"iterations\": {}}}, \
             \"peak_ratio\": {peak_ratio:.2}, \"iter_speedup\": {iter_speedup:.3}}}",
            sparse_fit.iterations, dense_fit.iterations
        );
        json.push_str(if di + 1 < densities.len() { ",\n" } else { "\n" });

        if density == min_density {
            acceptance = Some((density, peak_ratio));
        }
    }
    json.push_str("  ],\n");

    if let Some((density, ratio)) = acceptance {
        let _ = writeln!(
            json,
            "  \"acceptance\": {{\"density\": {density}, \"peak_ratio\": {ratio:.2}}},"
        );
        println!("\n   acceptance @ density {density}: dense/sparse peak ratio {ratio:.1}x");
        if density <= 2e-3 {
            assert!(
                ratio >= 10.0,
                "O(nnz) memory acceptance failed: dense/sparse peak ratio {ratio:.1}x < 10x \
                 at density {density}"
            );
        }
    }

    // Telemetry snapshot (fit counters, iteration histograms, input-shape
    // gauges), embedded only after the exporter round-trip check.
    let snap = registry.snapshot();
    let _ = write!(json, "  \"metrics\": {}\n}}\n", checked_json(&snap));

    std::fs::write(&out_path, &json).expect("write BENCH_sparse.json");
    println!("   wrote {out_path}");
}
