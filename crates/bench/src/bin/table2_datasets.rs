//! Table II — description of the (simulated) real-world tensor datasets.
//!
//! ```text
//! cargo run -p dpar2-bench --release --bin table2_datasets -- --scale 1.0
//! ```

use dpar2_bench::{print_table, Args, HarnessConfig};
use dpar2_data::registry;

fn main() {
    let args = Args::parse();
    let cfg = HarnessConfig::from_args(&args);
    println!(
        "== Table II: dataset description (paper dims vs simulated dims at scale {}) ==\n",
        cfg.scale
    );

    let mut rows = Vec::new();
    for spec in registry() {
        let t = spec.generate_scaled(cfg.scale, cfg.seed);
        let (pi, pj, pk) = spec.paper_dims;
        rows.push(vec![
            spec.name.to_string(),
            format!("{pi}"),
            format!("{pj}"),
            format!("{pk}"),
            format!("{}", t.max_i()),
            format!("{}", t.j()),
            format!("{}", t.k()),
            format!("{:.1}M", t.num_entries() as f64 / 1e6),
            spec.summary.to_string(),
        ]);
    }
    print_table(
        &[
            "Dataset",
            "paper max I_k",
            "paper J",
            "paper K",
            "sim max I_k",
            "sim J",
            "sim K",
            "entries",
            "summary",
        ],
        &rows,
    );
    println!("\nAll eight datasets are synthetic stand-ins (see DESIGN.md §3) that keep");
    println!("the paper's shape ratios: tall-J spectrograms, tall-I stock histories,");
    println!("mid-size feature tensors, and regular traffic tensors.");
}
