//! Fig. 8 — the sorted slice-length (listing period) curves of the stock
//! datasets, the irregularity that motivates Algorithm 4.
//!
//! ```text
//! cargo run -p dpar2-bench --release --bin fig8_slice_lengths -- --scale 1.0
//! ```

use dpar2_bench::{bar, Args, HarnessConfig};
use dpar2_data::stock::{generate, StockMarketConfig};
use dpar2_parallel::{greedy_partition, imbalance, round_robin_partition};

fn main() {
    let args = Args::parse();
    let cfg = HarnessConfig::from_args(&args);
    let n_stocks = ((240.0 * cfg.scale).round() as usize).max(12);
    let max_days = ((790.0 * cfg.scale).round() as usize).max(560);

    for (name, config) in [
        ("US-Stock-sim", StockMarketConfig::us_like(n_stocks, max_days, cfg.seed)),
        (
            "KR-Stock-sim",
            StockMarketConfig::kr_like((n_stocks * 3) / 4, (max_days * 7) / 10, cfg.seed + 1),
        ),
    ] {
        let ds = generate(&config);
        let mut lengths = ds.tensor.row_dims();
        lengths.sort_unstable_by(|a, b| b.cmp(a));
        let max = lengths[0] as f64;
        println!("== Fig. 8 ({name}): sorted time lengths of {} slices ==", lengths.len());
        // Print a 16-row downsampled profile of the sorted curve.
        let steps = 16.min(lengths.len());
        for s in 0..steps {
            let idx = s * (lengths.len() - 1) / (steps - 1).max(1);
            let v = lengths[idx];
            println!("  sorted index {idx:>5}: {v:>6} days  {}", bar(v as f64, max, 40));
        }
        // The load-balance consequence (the reason Fig. 8 is in the paper):
        let threads = cfg.threads.max(6);
        let g = imbalance(&lengths, &greedy_partition(&lengths, threads));
        let r = imbalance(&lengths, &round_robin_partition(lengths.len(), threads));
        println!("  -> with {threads} threads: greedy imbalance {g:.3}, round-robin {r:.3}\n");
    }
    println!("Shape check vs paper: a head of long-lived listings decaying convexly to a");
    println!("tail of short listings — the skew that makes greedy partitioning matter.");
}
