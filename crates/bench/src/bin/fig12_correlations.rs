//! Fig. 12 — feature-correlation heatmaps on the two stock markets.
//!
//! Decomposes each stock tensor with DPar2, then prints the Pearson
//! correlation between the latent vectors `V(i,:)` of 8 selected features:
//! the 4 price features plus ATR, STOCH, OBV, MACD.
//!
//! Paper findings this reproduces:
//! * both markets: STOCH negatively / MACD weakly correlated with prices;
//! * US market: ATR and OBV positively correlated with prices;
//! * KR market: ATR and OBV largely uncorrelated with prices.
//!
//! ```text
//! cargo run -p dpar2-bench --release --bin fig12_correlations -- --scale 0.5
//! ```

use dpar2_analysis::pcc_matrix;
use dpar2_bench::{Args, HarnessConfig};
use dpar2_core::Dpar2;
use dpar2_data::stock::{generate, StockMarketConfig};

const SELECTED: [&str; 8] =
    ["OPENING", "HIGHEST", "LOWEST", "CLOSING", "ATR_14", "STOCH_K_14", "OBV", "MACD"];
const LABELS: [&str; 8] =
    ["OPENING", "HIGHEST", "LOWEST", "CLOSING", "ATR", "STOCH", "OBV", "MACD"];

fn main() {
    let args = Args::parse();
    let cfg = HarnessConfig::from_args(&args);
    let n_stocks = ((240.0 * cfg.scale).round() as usize).max(16);
    let max_days = ((790.0 * cfg.scale).round() as usize).max(560);

    for (name, market) in [
        ("US stock data", StockMarketConfig::us_like(n_stocks, max_days, cfg.seed)),
        ("Korea stock data", StockMarketConfig::kr_like(n_stocks, max_days, cfg.seed + 1)),
    ] {
        let ds = generate(&market);
        let fit = Dpar2.fit(&ds.tensor, &cfg.fit_options()).expect("decomposition failed");
        let rows: Vec<usize> = SELECTED
            .iter()
            .map(|want| {
                ds.feature_names
                    .iter()
                    .position(|n| n == want)
                    .unwrap_or_else(|| panic!("feature {want} missing"))
            })
            .collect();
        let pcc = pcc_matrix(&fit.v, &rows);

        println!("== Fig. 12 ({name}): PCC between feature latent vectors V(i,:) ==");
        println!("   (fitness {:.4}, {} stocks)", fit.fitness(&ds.tensor), ds.tensor.k());
        print!("{:>9}", "");
        for l in LABELS {
            print!("{l:>9}");
        }
        println!();
        for (i, l) in LABELS.iter().enumerate() {
            print!("{l:>9}");
            for j in 0..LABELS.len() {
                print!("{:>9.2}", pcc.at(i, j));
            }
            println!();
        }

        // Summarize the paper's focal quantities.
        let price_idx = [0usize, 1, 2, 3];
        let mean_with_prices =
            |row: usize| -> f64 { price_idx.iter().map(|&p| pcc.at(row, p)).sum::<f64>() / 4.0 };
        println!("\n  mean PCC with the 4 price features:");
        for (row, label) in [(4usize, "ATR"), (5, "STOCH"), (6, "OBV"), (7, "MACD")] {
            println!("    {label:>6}: {:+.3}", mean_with_prices(row));
        }
        println!();
    }
    println!("Paper shape: ATR/OBV vs prices positive on the US profile, near zero on");
    println!("the KR profile; STOCH negative and MACD weak on both.");
}
