//! Criterion microbenchmarks for the computational kernels behind the
//! paper's per-iteration and preprocessing claims, plus the ablations
//! DESIGN.md calls out:
//!
//! * `rsvd_vs_exact` — Algorithm 1 vs full Jacobi SVD (compression cost).
//! * `rsvd_power_iters` — q ∈ {0, 1, 2} accuracy/cost ablation.
//! * `lemma_kernels` — Lemmas 1–3 vs naive MTTKRP on materialized Y (the
//!   O(JR²+KR³) vs O(JKR²) claim).
//! * `convergence` — compressed criterion vs true reconstruction error
//!   (§III-E).
//! * `partitioning` — greedy (Algorithm 4) vs round-robin.
//! * `gemm` — the base matmul kernels everything sits on.
//! * `two_stage_ablation` — two-stage compression vs stage-1-only.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpar2_baselines::common::true_error_sq;
use dpar2_core::compress::compress;
use dpar2_core::config::FitOptions;
use dpar2_core::convergence::compressed_criterion;
use dpar2_core::lemmas::{g1, g2, g3, materialize_y, naive_g1, naive_g2, naive_g3};
use dpar2_data::planted_parafac2;
use dpar2_linalg::kernel::{self, Trans};
use dpar2_linalg::random::gaussian_mat;
use dpar2_linalg::{svd_truncated, Mat};
use dpar2_parallel::{greedy_partition, round_robin_partition, ThreadPool};
use dpar2_rsvd::{rsvd, RsvdConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_rsvd_vs_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("rsvd_vs_exact");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(1);
    for &(m, n) in &[(400usize, 120usize), (800, 200)] {
        let a = {
            let u = gaussian_mat(m, 10, &mut rng);
            let v = gaussian_mat(n, 10, &mut rng);
            let mut x = u.matmul_nt(&v).unwrap();
            x.axpy(0.05, &gaussian_mat(m, n, &mut rng));
            x
        };
        group.bench_with_input(BenchmarkId::new("rsvd_q1", format!("{m}x{n}")), &a, |b, a| {
            b.iter(|| {
                let mut r = StdRng::seed_from_u64(2);
                black_box(rsvd(a, &RsvdConfig::new(10), &mut r))
            })
        });
        group.bench_with_input(BenchmarkId::new("exact_svd", format!("{m}x{n}")), &a, |b, a| {
            b.iter(|| black_box(svd_truncated(a, 10)))
        });
    }
    group.finish();
}

fn bench_rsvd_power_iters(c: &mut Criterion) {
    let mut group = c.benchmark_group("rsvd_power_iters");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(3);
    let a = {
        let u = gaussian_mat(600, 12, &mut rng);
        let v = gaussian_mat(150, 12, &mut rng);
        let mut x = u.matmul_nt(&v).unwrap();
        x.axpy(0.1, &gaussian_mat(600, 150, &mut rng));
        x
    };
    for q in [0usize, 1, 2] {
        group.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, &q| {
            b.iter(|| {
                let mut r = StdRng::seed_from_u64(4);
                let cfg = RsvdConfig { rank: 10, oversample: 8, power_iterations: q };
                black_box(rsvd(&a, &cfg, &mut r))
            })
        });
    }
    group.finish();
}

/// Shared fixture for the iteration kernels: K factorized slices.
struct LemmaFixture {
    pzf: Vec<Mat>,
    edt: Mat,
    de: Mat,
    v: Mat,
    h: Mat,
    w: Mat,
    edtv: Mat,
}

fn lemma_fixture(k: usize, j: usize, r: usize) -> LemmaFixture {
    let mut rng = StdRng::seed_from_u64(5);
    let pzf: Vec<Mat> = (0..k).map(|_| gaussian_mat(r, r, &mut rng)).collect();
    let d = gaussian_mat(j, r, &mut rng);
    let e: Vec<f64> = (0..r).map(|i| 1.0 + i as f64).collect();
    let mut edt = d.transpose();
    for (row, &ev) in e.iter().enumerate() {
        for x in edt.row_mut(row) {
            *x *= ev;
        }
    }
    let mut de = d;
    for i in 0..j {
        let rr = de.row_mut(i);
        for (c, &ev) in e.iter().enumerate() {
            rr[c] *= ev;
        }
    }
    let v = gaussian_mat(j, r, &mut rng);
    let h = gaussian_mat(r, r, &mut rng);
    let w = gaussian_mat(k, r, &mut rng);
    let edtv = edt.matmul(&v).unwrap();
    LemmaFixture { pzf, edt, de, v, h, w, edtv }
}

fn bench_lemma_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("lemma_kernels");
    group.sample_size(20);
    let fx = lemma_fixture(300, 256, 10);
    let pool = ThreadPool::new(1);
    let y = materialize_y(&fx.pzf, &fx.edt);

    group.bench_function("g1_lemma", |b| b.iter(|| black_box(g1(&fx.pzf, &fx.w, &fx.edtv, &pool))));
    group.bench_function("g1_naive", |b| b.iter(|| black_box(naive_g1(&y, &fx.v, &fx.w))));
    group.bench_function("g2_lemma", |b| {
        b.iter(|| black_box(g2(&fx.pzf, &fx.w, &fx.h, &fx.de, &pool)))
    });
    group.bench_function("g2_naive", |b| b.iter(|| black_box(naive_g2(&y, &fx.h, &fx.w))));
    group.bench_function("g3_lemma", |b| b.iter(|| black_box(g3(&fx.pzf, &fx.edtv, &fx.h, &pool))));
    group.bench_function("g3_naive", |b| b.iter(|| black_box(naive_g3(&y, &fx.h, &fx.v))));
    group.finish();
}

fn bench_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("convergence");
    group.sample_size(10);
    // A real tensor + its compression so both criteria are meaningful.
    let t = planted_parafac2(&[200, 300, 150, 250], 128, 10, 0.1, 6);
    let cfg = FitOptions::new(10).with_seed(7);
    let ct = compress(&t, &cfg).unwrap();
    let fx = lemma_fixture(t.k(), t.j(), 10);
    let pool = ThreadPool::new(1);
    let edt = ct.edt();
    // Q_k for the true-error oracle: orthonormal bases from the compression.
    let qs: Vec<Mat> = ct.a;

    group.bench_function("compressed_criterion", |b| {
        b.iter(|| black_box(compressed_criterion(&fx.pzf, &edt, &fx.h, &fx.w, &fx.v, &pool)))
    });
    group.bench_function("true_reconstruction_error", |b| {
        b.iter(|| black_box(true_error_sq(&t, &qs, &fx.h, &fx.w, &fx.v)))
    });
    group.finish();
}

fn bench_partitioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioning");
    let weights: Vec<usize> = (1..=4000).map(|i| 5000 / i + 50).collect();
    group.bench_function("greedy", |b| b.iter(|| black_box(greedy_partition(&weights, 10))));
    group.bench_function("round_robin", |b| {
        b.iter(|| black_box(round_robin_partition(weights.len(), 10)))
    });
    group.finish();
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(8);
    let a = gaussian_mat(256, 256, &mut rng);
    let b_m = gaussian_mat(256, 256, &mut rng);
    // Public entry points (size-dispatched onto the blocked kernel layer).
    group.bench_function("matmul_256", |b| b.iter(|| black_box(a.matmul(&b_m).unwrap())));
    group.bench_function("matmul_tn_256", |b| b.iter(|| black_box(a.matmul_tn(&b_m).unwrap())));
    group.bench_function("matmul_nt_256", |b| b.iter(|| black_box(a.matmul_nt(&b_m).unwrap())));
    // The dispatch ablation: retained naive reference vs forced blocked vs
    // pooled (see `--bin gemm_kernels` for the full size/thread sweep).
    let mut out = Mat::zeros(256, 256);
    group.bench_function("naive_256", |b| {
        b.iter(|| {
            kernel::gemm_naive_into(Trans::N, Trans::N, &a, &b_m, &mut out);
            black_box(&out);
        })
    });
    group.bench_function("blocked_256", |b| {
        b.iter(|| {
            kernel::gemm_into(Trans::N, Trans::N, &a, &b_m, &mut out);
            black_box(&out);
        })
    });
    let pool = ThreadPool::new(4);
    group.bench_function("pooled4_256", |b| {
        b.iter(|| {
            kernel::gemm_pooled_into(Trans::N, Trans::N, &a, &b_m, &mut out, &pool);
            black_box(&out);
        })
    });
    group.finish();
}

fn bench_two_stage_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("two_stage_ablation");
    group.sample_size(10);
    let t = planted_parafac2(&[150, 220, 180, 120, 200], 96, 10, 0.1, 9);
    let cfg = FitOptions::new(10).with_seed(10);
    group.bench_function("two_stage_compress", |b| {
        b.iter(|| black_box(compress(&t, &cfg).unwrap()))
    });
    // Stage-1 only: the per-slice rSVDs without the second concatenated SVD
    // (what a one-stage design would pay, leaving KR-wide intermediates).
    group.bench_function("stage1_only", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(11);
            let out: Vec<_> =
                t.slice_views().map(|x| rsvd(x, &RsvdConfig::new(10), &mut rng)).collect();
            black_box(out)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_rsvd_vs_exact,
    bench_rsvd_power_iters,
    bench_lemma_kernels,
    bench_convergence,
    bench_partitioning,
    bench_gemm,
    bench_two_stage_ablation
);
criterion_main!(benches);
