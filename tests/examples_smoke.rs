//! Smoke tests running every example end to end, so example drift breaks
//! the build instead of users (`cargo test --test examples_smoke`).
//!
//! Each example is invoked through the same `cargo` that runs the tests;
//! the artifacts are shared with the surrounding `cargo test` build, so the
//! per-example cost is the run itself (every example finishes in a few
//! seconds even unoptimized).

use std::process::Command;

/// Runs one example to completion and sanity-checks its output.
fn run_example(name: &str) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut args = vec!["run", "--quiet", "--example", name];
    // Match the surrounding test profile so the artifacts built by
    // `cargo test` are reused instead of triggering a second full build.
    if !cfg!(debug_assertions) {
        args.insert(1, "--release");
    }
    let output = Command::new(cargo)
        .args(&args)
        .env("RUST_BACKTRACE", "1")
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
    assert!(
        output.status.success(),
        "example {name} exited with {}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        !stdout.trim().is_empty(),
        "example {name} produced no output; examples are expected to report their results"
    );
}

#[test]
fn quickstart_runs() {
    run_example("quickstart");
}

#[test]
fn audio_similarity_runs() {
    run_example("audio_similarity");
}

#[test]
fn method_comparison_runs() {
    run_example("method_comparison");
}

#[test]
fn stock_analysis_runs() {
    run_example("stock_analysis");
}

#[test]
fn streaming_updates_runs() {
    run_example("streaming_updates");
}

#[test]
fn serve_demo_runs() {
    // Exercises the full save/load/serve path: persistence round-trip,
    // concurrent queries, and a live ingest publish.
    run_example("serve_demo");
}

#[test]
fn net_demo_runs() {
    // Exercises the wire front-end: binary protocol, typed protocol
    // errors, HTTP text mode, and graceful shutdown over real sockets.
    run_example("net_demo");
}
