//! End-to-end telemetry acceptance: the same `dpar2-obs` registry watches
//! a solver fit, a metered query engine, and an indexed ingest worker —
//! and every number it reports must reconcile *exactly* with what the
//! instrumented components themselves returned. Finishes by pushing the
//! snapshot through both exporters: the Prometheus text must contain the
//! expected series and the JSON must round-trip bit-exact.

use dpar2_repro::core::{Dpar2, FitMetrics, FitOptions, FitPhase, MetricsObserver, StreamingDpar2};
use dpar2_repro::data::planted_parafac2;
use dpar2_repro::obs::{export, MetricsRegistry};
use dpar2_repro::serve::{
    build_and_install, AnswerPath, IndexOptions, IngestEvent, IngestWorker, ModelMeta,
    ModelRegistry, QueryEngine, QueryMode, ServeMetrics, ServedModel,
};
use std::sync::Arc;
use std::time::Duration;

/// A fit driven through a [`MetricsObserver`] must leave counters that
/// agree with the returned [`Parafac2Fit`]: one completed fit, exactly
/// `fit.iterations` iteration events, and one closed span per phase.
#[test]
fn fit_metrics_reconcile_with_fit_result() {
    let tensor = planted_parafac2(&[20, 28, 16], 10, 3, 0.2, 42);
    let registry = MetricsRegistry::new();
    let metrics = FitMetrics::register(&registry, "fit");

    let mut observer = MetricsObserver::new(&metrics);
    let fit =
        Dpar2.fit_observed(&tensor, &FitOptions::new(3).with_seed(7), &mut observer).expect("fit");

    let snap = registry.snapshot();
    assert_eq!(snap.counter("fit_fits_total"), Some(1));
    assert_eq!(snap.counter("fit_iterations_total"), Some(fit.iterations as u64));
    assert_eq!(snap.histogram("fit_iteration_ns").unwrap().count, fit.iterations as u64);
    for phase in FitPhase::ALL {
        let h = snap.histogram(&format!("fit_phase_{}_ns", phase.name())).unwrap();
        assert_eq!(h.count, 1, "exactly one {} span per fit", phase.name());
    }
}

/// The metered query engine's telemetry must reconcile with the
/// [`QueryResult`]s it handed back — per-path latency counts, cache
/// outcomes, and pruning work — and the snapshot must survive both
/// exporters.
#[test]
fn serve_metrics_reconcile_and_snapshot_exports() {
    let n = 12usize;
    let k = 4usize;
    let tensor = planted_parafac2(&vec![24; n], 12, 3, 0.05, 99);
    let fit = Dpar2.fit(&tensor, &FitOptions::new(3).with_seed(8)).expect("fit");

    let registry = MetricsRegistry::new();
    let metrics = ServeMetrics::register(&registry);
    let models = Arc::new(ModelRegistry::new());
    models.publish("obs", ServedModel::from_parts(ModelMeta::new("obs").with_gamma(0.05), fit));
    let version = models.get("obs").expect("published");
    let pool = dpar2_repro::parallel::ThreadPool::new(1);
    assert!(build_and_install(&version, &IndexOptions::default(), &pool));

    let engine = QueryEngine::new(models, 1).with_metrics(&metrics);

    // One exact answer, one computed indexed answer (full probe → bitwise
    // equal to exact), then the same indexed query again → cache hit.
    let exact = engine.top_k_with_mode("obs", 0, k, QueryMode::Exact).expect("exact");
    let full_probe = QueryMode::Indexed { nprobe: Some(usize::MAX) };
    let indexed = engine.top_k_with_mode("obs", 1, k, full_probe).expect("indexed");
    let hit = engine.top_k_with_mode("obs", 1, k, full_probe).expect("cache hit");

    assert_eq!(exact.path, AnswerPath::Exact);
    assert_eq!(indexed.path, AnswerPath::Indexed);
    assert!(hit.cache_hit);
    assert_eq!(hit.neighbors, indexed.neighbors);
    assert_eq!(exact.candidates_scanned, n - 1, "exact scan scores every other entity");
    assert_eq!(hit.candidates_scanned, 0, "a cache hit recomputes nothing");
    for res in [&exact, &indexed, &hit] {
        assert!(res.elapsed > Duration::ZERO, "elapsed must be stamped");
    }

    let snap = registry.snapshot();
    assert_eq!(snap.counter("serve_query_queries_total"), Some(3));
    assert_eq!(snap.counter("serve_query_cache_hits_total"), Some(1));
    assert_eq!(snap.counter("serve_query_cache_misses_total"), Some(2));
    assert_eq!(snap.histogram("serve_query_latency_exact_ns").unwrap().count, 1);
    assert_eq!(snap.histogram("serve_query_latency_indexed_ns").unwrap().count, 1);
    assert_eq!(snap.histogram("serve_query_latency_cache_hit_ns").unwrap().count, 1);
    assert_eq!(
        snap.counter("serve_query_candidates_scanned_total"),
        Some(indexed.candidates_scanned as u64),
        "only the computed indexed answer contributes pruning work"
    );
    assert_eq!(snap.counter("serve_query_candidates_total"), Some(n as u64));
    let stats = engine.cache_stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 2);

    // Exporters: the text exposition carries the series, the JSON
    // round-trips bit-exact (all-integer encoding — no float loss).
    let text = export::to_text(&snap);
    assert!(text.contains("serve_query_queries_total 3"), "missing counter line:\n{text}");
    assert!(text.contains("serve_query_latency_exact_ns_count 1"), "missing histogram:\n{text}");
    assert!(text.contains("le=\"+Inf\""), "histogram must end with the +Inf bucket:\n{text}");
    let back = export::from_json(&export::to_json(&snap)).expect("parse back");
    assert_eq!(back, snap, "JSON export must round-trip exactly");
}

/// The observed indexed ingest worker: typed events in stream order,
/// append/refit/staleness histograms populated, queue drained back to
/// zero depth — all through the umbrella crate's re-exports.
#[test]
fn ingest_worker_events_and_staleness_reconcile() {
    let tensor = planted_parafac2(&[20; 6], 10, 3, 0.05, 321);
    let registry = MetricsRegistry::new();
    let metrics = ServeMetrics::register(&registry);
    let models = Arc::new(ModelRegistry::new());
    let stream = StreamingDpar2::new(FitOptions::new(3).with_seed(9));
    let worker = IngestWorker::spawn_indexed_observed(
        stream,
        ModelMeta::new("live").with_gamma(0.05),
        models.clone(),
        IndexOptions::default(),
        1,
        metrics.ingest,
    );

    // Two batches; flushing the index builder between them serializes the
    // builds, so both published versions get a staleness sample.
    worker.append(tensor.to_slices()[..3].to_vec());
    worker.flush();
    worker.flush_indexes();
    worker.append(tensor.to_slices()[3..].to_vec());
    worker.flush();
    worker.flush_indexes();

    assert_eq!(models.version("live"), Some(2));
    let events = worker.events();
    assert_eq!(events.len(), 2, "one event per non-empty batch: {events:?}");
    for (i, event) in events.iter().enumerate() {
        match event {
            IngestEvent::Published { batch, version, entities } => {
                assert_eq!(*batch, i as u64 + 1);
                assert_eq!(*version, i as u64 + 1);
                assert_eq!(*entities, 3 * (i + 1), "cumulative entity count");
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
    assert!(worker.errors().is_empty());

    let snap = registry.snapshot();
    assert_eq!(snap.counter("serve_ingest_appends_total"), Some(2));
    assert_eq!(snap.counter("serve_ingest_errors_total"), Some(0));
    assert_eq!(snap.gauge("serve_ingest_queue_depth"), Some(0), "queue fully drained");
    assert_eq!(snap.histogram("serve_ingest_append_ns").unwrap().count, 2);
    assert_eq!(snap.histogram("serve_ingest_refit_ns").unwrap().count, 2);
    let staleness = snap.histogram("serve_ingest_staleness_ns").unwrap();
    assert_eq!(staleness.count, 2, "every published version got indexed");
    assert!(staleness.min > 0, "publish→index-ready window cannot be zero");

    worker.shutdown();
}
