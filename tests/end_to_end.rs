//! Cross-crate integration tests: the full pipeline from data generation
//! through decomposition to analysis, plus cross-method validation.

use dpar2_repro::baselines::{fit_with, Method, SpartanSparse};
use dpar2_repro::core::{Dpar2, FitOptions, IterationEvent, StopReason};
use dpar2_repro::data::{planted_parafac2, planted_sparse, registry, tenrand_irregular};
use std::ops::ControlFlow;

/// All four solvers must reach comparable fitness on planted data — the
/// paper's "comparable accuracy" claim (Fig. 1).
#[test]
fn all_methods_agree_on_planted_data() {
    let tensor = planted_parafac2(&[40, 60, 35, 50], 24, 4, 0.1, 1001);
    let config = FitOptions::new(4).with_max_iterations(20).with_seed(7);
    let mut fitnesses = Vec::new();
    for method in Method::ALL {
        let fit = fit_with(method, &tensor, &config).expect("solver failed");
        let f = fit.fitness(&tensor);
        assert!(f > 0.9, "{} fitness {f}", method.name());
        fitnesses.push((method.name(), f));
    }
    let max = fitnesses.iter().map(|&(_, f)| f).fold(f64::MIN, f64::max);
    let min = fitnesses.iter().map(|&(_, f)| f).fold(f64::MAX, f64::min);
    assert!(max - min < 0.05, "methods disagree beyond tolerance: {fitnesses:?}");
}

/// DPar2 runs on every Table II dataset stand-in at smoke scale.
#[test]
fn dpar2_runs_on_every_registry_dataset() {
    for spec in registry() {
        let tensor = spec.generate_scaled(0.1, 5);
        let fit = Dpar2
            .fit(&tensor, &FitOptions::new(6).with_seed(6).with_max_iterations(8))
            .unwrap_or_else(|e| panic!("{} failed: {e}", spec.name));
        let f = fit.fitness(&tensor);
        assert!((0.0..=1.0 + 1e-9).contains(&f), "{}: fitness {f} out of range", spec.name);
        assert!(f > 0.3, "{}: implausibly low fitness {f}", spec.name);
        assert_eq!(fit.v.shape(), (tensor.j(), 6), "{}: V shape", spec.name);
    }
}

/// Rank sweep: higher rank must never reduce achievable fitness on the
/// same data (more expressive model).
#[test]
fn fitness_monotone_in_rank() {
    let tensor = planted_parafac2(&[50, 70, 40], 30, 6, 0.2, 1002);
    let mut last = 0.0;
    for rank in [2usize, 4, 6] {
        let fit = Dpar2
            .fit(&tensor, &FitOptions::new(rank).with_seed(8).with_max_iterations(20))
            .expect("fit failed");
        let f = fit.fitness(&tensor);
        assert!(f > last - 0.02, "fitness dropped from {last} to {f} at rank {rank}");
        last = f;
    }
}

/// The compressed convergence criterion must track the true reconstruction
/// error: when DPar2 says it converged, the true fitness must be stable too.
#[test]
fn compressed_criterion_tracks_true_error() {
    let tensor = planted_parafac2(&[45, 55, 60], 20, 3, 0.15, 1003);
    let short = Dpar2
        .fit(&tensor, &FitOptions::new(3).with_seed(9).with_max_iterations(6).with_tolerance(0.0))
        .unwrap();
    let long = Dpar2
        .fit(&tensor, &FitOptions::new(3).with_seed(9).with_max_iterations(30).with_tolerance(0.0))
        .unwrap();
    // More iterations → criterion and true error both improve (or hold).
    assert!(long.criterion_trace.last().unwrap() <= short.criterion_trace.last().unwrap());
    assert!(long.fitness(&tensor) >= short.fitness(&tensor) - 1e-6);
}

/// tenrand tensors (the paper's scalability workload) have no low-rank
/// structure: fitness is low but everything must still be well-behaved.
#[test]
fn tenrand_low_fitness_but_valid() {
    let tensor = tenrand_irregular(40, 30, 12, 1004);
    let fit = Dpar2.fit(&tensor, &FitOptions::new(5).with_seed(10).with_max_iterations(8)).unwrap();
    let f = fit.fitness(&tensor);
    // Uniform[0,1) tensors have a large rank-1 "DC" component, so fitness
    // is meaningful but far from 1.
    assert!(f > 0.5 && f < 0.99, "unexpected tenrand fitness {f}");
    for k in 0..tensor.k() {
        assert_eq!(fit.u[k].shape(), (40, 5));
    }
}

/// `Dpar2::fit` must be **bit-identical** across thread counts, not merely
/// close: the pooled GEMM layer fixes its reduction order (row panels of C
/// with ascending depth blocks), the lemma kernels reduce over fixed-width
/// slice chunks, and every per-slice fan-out preserves item order — so no
/// floating-point grouping anywhere depends on the schedule. This pins the
/// whole chain at once.
#[test]
fn fit_bit_identical_across_thread_counts() {
    let tensor = planted_parafac2(&[40, 65, 25, 55, 30, 45], 24, 4, 0.1, 1006);
    let reference = Dpar2.fit(&tensor, &FitOptions::new(4).with_seed(12).with_threads(1)).unwrap();
    for threads in [2, 4] {
        let fit =
            Dpar2.fit(&tensor, &FitOptions::new(4).with_seed(12).with_threads(threads)).unwrap();
        assert_eq!(fit.iterations, reference.iterations, "{threads} threads: iteration count");
        // Mat/Vec equality here is exact f64 comparison — any reduction
        // reordering would trip it.
        assert_eq!(fit.h, reference.h, "{threads} threads: H differs");
        assert_eq!(fit.v, reference.v, "{threads} threads: V differs");
        assert_eq!(fit.s, reference.s, "{threads} threads: S differs");
        assert_eq!(fit.u, reference.u, "{threads} threads: U differs");
        assert_eq!(
            fit.criterion_trace, reference.criterion_trace,
            "{threads} threads: criterion trace differs"
        );
    }
}

/// PARAFAC2 constraint: the cross-product U_kᵀU_k is slice-invariant for
/// every solver.
#[test]
fn cross_product_invariance_all_methods() {
    let tensor = planted_parafac2(&[30, 45, 25], 18, 3, 0.1, 1005);
    let config = FitOptions::new(3).with_max_iterations(10).with_seed(11);
    for method in Method::ALL {
        let fit = fit_with(method, &tensor, &config).expect("solver failed");
        let reference = fit.u[0].gram();
        for k in 1..tensor.k() {
            let dev = (&fit.u[k].gram() - &reference).fro_norm() / (1.0 + reference.fro_norm());
            assert!(dev < 1e-6, "{}: U_kᵀU_k varies across slices ({dev})", method.name());
        }
    }
}

/// Acceptance fixture for the observer API: on the fixed-seed end-to-end
/// tensor, the live criterion trace an observer sees is exactly the fit's
/// recorded trace and is monotonically non-increasing for DPar2.
#[test]
fn observer_trace_monotone_on_fixed_seed_fixture() {
    let tensor = planted_parafac2(&[40, 60, 35, 50], 24, 4, 0.1, 1001);
    let mut live: Vec<f64> = Vec::new();
    let mut fitness_trace: Vec<f64> = Vec::new();
    let mut observer = |e: &IterationEvent| {
        live.push(e.criterion);
        fitness_trace.push(e.fitness());
        ControlFlow::<StopReason>::Continue(())
    };
    let options = FitOptions::new(4).with_seed(7).with_max_iterations(20).with_tolerance(0.0);
    let fit = Dpar2.fit_observed(&tensor, &options, &mut observer).unwrap();
    assert_eq!(live, fit.criterion_trace, "observer must see the recorded trace, live");
    assert!(!live.is_empty());
    for pair in live.windows(2) {
        assert!(pair[1] <= pair[0] * (1.0 + 1e-9), "DPar2 observer trace increased: {live:?}");
    }
    // The live compressed fitness mirrors the criterion, so it must be
    // non-decreasing to the same tolerance.
    for pair in fitness_trace.windows(2) {
        assert!(pair[1] >= pair[0] - 1e-9, "live fitness decreased: {fitness_trace:?}");
    }
}

/// Sparse end-to-end: a fully observed planted sparse model (density 1,
/// no noise) is recovered by `SpartanSparse` through both entry points —
/// the native CSR `fit_sparse` and the registry's densifying `fit` — and
/// the two land on the same fit bit for bit.
#[test]
fn sparse_pipeline_recovers_planted_model_through_both_entry_points() {
    let sparse = planted_sparse(&[50, 70, 40, 60], 16, 3, 1.0, 0.0, 1007);
    let dense = sparse.to_dense();
    let config = FitOptions::new(3).with_max_iterations(25).with_seed(13).with_threads(1);

    let native = SpartanSparse.fit_sparse(&sparse, &config).expect("sparse fit failed");
    let f = native.fitness(&dense);
    assert!(f > 0.99, "sparse fit missed the planted model: fitness {f}");

    let via_registry = fit_with(Method::SpartanSparse, &dense, &config).expect("registry fit");
    assert_eq!(via_registry.iterations, native.iterations, "iteration count");
    assert_eq!(via_registry.stop_reason, native.stop_reason, "stop reason");
    assert_eq!(via_registry.h, native.h, "H differs between entry points");
    assert_eq!(via_registry.v, native.v, "V differs between entry points");
    assert_eq!(via_registry.s, native.s, "S differs between entry points");
    assert_eq!(via_registry.u, native.u, "U differs between entry points");
    assert_eq!(via_registry.criterion_trace, native.criterion_trace, "criterion trace");
}

/// The typed stop reason is consistent across every solver in the
/// registry: with a generous tolerance the solvers report Converged or
/// MaxIterations, never a cancellation they did not receive.
#[test]
fn stop_reasons_are_typed_for_every_method() {
    let tensor = planted_parafac2(&[30, 45, 25], 18, 3, 0.1, 1005);
    let config = FitOptions::new(3).with_max_iterations(10).with_seed(11);
    for method in Method::WITH_ABLATION {
        let fit = fit_with(method, &tensor, &config).expect("solver failed");
        assert!(
            matches!(fit.stop_reason, StopReason::Converged | StopReason::MaxIterations),
            "{}: unexpected stop reason {:?}",
            method.name(),
            fit.stop_reason
        );
        assert_eq!(fit.iterations, fit.criterion_trace.len(), "{}: trace length", method.name());
    }
}
