//! Allocation-regression suite: proves the zero-copy view refactor's core
//! claim — after a one-iteration warmup, a steady-state single-threaded ALS
//! iteration of DPar2 and RD-ALS performs **zero heap allocations** (every
//! temporary comes from the `Workspace` arena via `*_into` kernels), and
//! the remaining baselines stay under a generous allocation ceiling.
//!
//! Method: a counting `#[global_allocator]` increments a **thread-local**
//! counter on every `alloc`/`realloc` (thread-local so concurrently running
//! tests in this binary cannot pollute each other's counts; at one solver
//! thread, all fit work runs on the calling thread). A `FitObserver`
//! snapshots the counter at every iteration boundary into a pre-reserved
//! buffer; the deltas between consecutive snapshots are the per-iteration
//! allocation counts.

// The counting allocator is the one place this workspace's `deny(unsafe_code)`
// is relaxed outside the SIMD kernel: `GlobalAlloc` is an unsafe trait.
#![allow(unsafe_code)]

use dpar2_repro::baselines::{NaiveCompressedAls, Parafac2Als, RdAls, SpartanDense, SpartanSparse};
use dpar2_repro::core::{Dpar2, FitOptions, IterationEvent, Parafac2Solver, StopReason};
use dpar2_repro::data::{planted_parafac2, planted_sparse};
use dpar2_repro::tensor::IrregularTensor;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::ops::ControlFlow;

thread_local! {
    /// Allocations observed on this thread since program start.
    static TL_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// System allocator wrapper that counts `alloc`/`realloc` calls per thread.
/// (`Cell<u64>` has no destructor, so the TLS access is safe even during
/// thread teardown.)
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = TL_ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = TL_ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs_now() -> u64 {
    TL_ALLOCS.with(Cell::get)
}

fn fixture() -> IrregularTensor {
    planted_parafac2(&[25, 40, 18, 32], 14, 3, 0.3, 9001)
}

fn options() -> FitOptions<'static> {
    // tolerance 0 + modest budget: several full-work iterations, one thread
    // (multi-threaded fits allocate inside the fan-out by design).
    FitOptions::new(3).with_seed(9002).with_threads(1).with_tolerance(0.0).with_max_iterations(6)
}

/// Runs one observed fit and returns the allocation count between each pair
/// of consecutive iteration boundaries (`deltas[i]` covers iteration `i+2`,
/// i.e. everything *after* the warmup iteration's boundary).
fn steady_state_deltas(solver: &dyn Parafac2Solver, tensor: &IrregularTensor) -> Vec<u64> {
    let mut snapshots: Vec<u64> = Vec::with_capacity(64);
    let mut observer = |_e: &IterationEvent| {
        snapshots.push(allocs_now());
        ControlFlow::<StopReason>::Continue(())
    };
    let fit = solver.fit_observed(tensor, &options(), &mut observer).expect("fit failed");
    assert!(
        fit.iterations >= 3,
        "{}: need ≥3 iterations to observe steady state, got {}",
        solver.name(),
        fit.iterations
    );
    snapshots.windows(2).map(|w| w[1] - w[0]).collect()
}

/// Tentpole pin: DPar2's steady-state iterations are allocation-free.
#[test]
fn dpar2_steady_state_iterations_allocate_nothing() {
    let t = fixture();
    let deltas = steady_state_deltas(&Dpar2, &t);
    assert!(
        deltas.iter().all(|&d| d == 0),
        "DPar2 allocated in steady state: per-iteration counts after warmup = {deltas:?}"
    );
}

/// Tentpole pin: RD-ALS's steady-state iterations are allocation-free too
/// (its Q-updates run tall QR-preconditioned SVDs — all on scratch).
#[test]
fn rd_als_steady_state_iterations_allocate_nothing() {
    let t = fixture();
    let deltas = steady_state_deltas(&RdAls, &t);
    assert!(
        deltas.iter().all(|&d| d == 0),
        "RD-ALS allocated in steady state: per-iteration counts after warmup = {deltas:?}"
    );
}

/// The remaining baselines keep their textbook allocating formulations, but
/// pin a generous ceiling so an accidental per-entry allocation regression
/// (e.g. a clone inside an inner loop) still fails loudly.
#[test]
fn other_baselines_stay_under_allocation_ceiling() {
    const CEILING: u64 = 50_000;
    let t = fixture();
    let solvers: [&dyn Parafac2Solver; 3] = [&Parafac2Als, &SpartanDense, &NaiveCompressedAls];
    for solver in solvers {
        let deltas = steady_state_deltas(solver, &t);
        let worst = deltas.iter().copied().max().unwrap_or(0);
        assert!(
            worst < CEILING,
            "{}: {worst} allocations in one steady-state iteration (ceiling {CEILING}); \
             deltas = {deltas:?}",
            solver.name()
        );
    }
}

/// Sparse-subsystem pin: `SpartanSparse` steady-state ALS iterations over
/// CSR slices are allocation-free, like DPar2's and RD-ALS's — the
/// sparse kernels write into the `Workspace` arena and per-slice scratch
/// sized during the warmup iteration. The J = 7, R = 3 configuration
/// keeps every dense product on the naive (non-packing) path.
#[test]
fn spartan_sparse_steady_state_iterations_allocate_nothing() {
    let t = planted_sparse(&[30, 45, 22, 38], 7, 3, 0.3, 0.1, 9003);
    let mut snapshots: Vec<u64> = Vec::with_capacity(64);
    let mut observer = |_e: &IterationEvent| {
        snapshots.push(allocs_now());
        ControlFlow::<StopReason>::Continue(())
    };
    let fit = SpartanSparse.fit_sparse_observed(&t, &options(), &mut observer).expect("fit failed");
    assert!(
        fit.iterations >= 3,
        "need ≥3 iterations to observe steady state, got {}",
        fit.iterations
    );
    let deltas: Vec<u64> = snapshots.windows(2).map(|w| w[1] - w[0]).collect();
    assert!(
        deltas.iter().all(|&d| d == 0),
        "SPARTan-sparse allocated in steady state: per-iteration counts after warmup = {deltas:?}"
    );
}

/// Sparse-subsystem pin: DPar2 fit from a CSR tensor keeps the
/// allocation-free steady state. The O(nnz) work all lives in the
/// compression stage — stages 2+ are the same compressed ALS the dense
/// pin covers — so this guards the `fit_sparse` surface against anyone
/// threading a per-iteration allocation through its plumbing.
#[test]
fn dpar2_sparse_steady_state_iterations_allocate_nothing() {
    let t = planted_sparse(&[30, 45, 22, 38], 7, 3, 0.3, 0.1, 9004);
    let mut snapshots: Vec<u64> = Vec::with_capacity(64);
    let mut observer = |_e: &IterationEvent| {
        snapshots.push(allocs_now());
        ControlFlow::<StopReason>::Continue(())
    };
    let fit = Dpar2.fit_sparse_observed(&t, &options(), &mut observer).expect("fit failed");
    assert!(
        fit.iterations >= 3,
        "need ≥3 iterations to observe steady state, got {}",
        fit.iterations
    );
    let deltas: Vec<u64> = snapshots.windows(2).map(|w| w[1] - w[0]).collect();
    assert!(
        deltas.iter().all(|&d| d == 0),
        "sparse DPar2 allocated in steady state: per-iteration counts after warmup = {deltas:?}"
    );
}

/// Serving pin: a steady-state probe of the pruned top-k index allocates
/// nothing. The first search grows the caller's scratch (partition order,
/// candidate heap) and output vector to their high-water marks; every
/// repeat search — across different targets, probe depths, and k — must
/// reuse them outright. This is the property that keeps the indexed query
/// path allocation-free per probe in `dpar2-serve`.
#[test]
fn index_search_steady_state_allocates_nothing() {
    use dpar2_repro::analysis::{EmbeddingIndex, IndexOptions, SearchScratch};
    use dpar2_repro::linalg::Mat;
    use dpar2_repro::parallel::ThreadPool;

    let n = 600usize;
    let dim = 12usize;
    let points = Mat::from_fn(n, dim, |i, j| ((i * 31 + j * 7) % 97) as f64 * 0.125);
    let pool = ThreadPool::new(1);
    let index = EmbeddingIndex::build(points.view(), &IndexOptions::default(), &pool);

    let mut scratch = SearchScratch::default();
    let mut out = Vec::new();
    // Warmup at the *largest* probe depth and k used below, so every later
    // call fits in the warmed capacities.
    index.top_k_similar_into(
        points.row(0),
        0.01,
        16,
        index.num_partitions(),
        Some(0),
        &mut scratch,
        &mut out,
    );

    let before = allocs_now();
    for t in 1..64usize {
        let probe = 1 + t % index.num_partitions();
        index.top_k_similar_into(
            points.row(t),
            0.01,
            1 + t % 16,
            probe,
            Some(t),
            &mut scratch,
            &mut out,
        );
    }
    let after = allocs_now();
    assert_eq!(
        after - before,
        0,
        "pruned index search allocated in steady state ({} allocations over 63 probes)",
        after - before
    );
}

/// Telemetry pin: wrapping the fit in a `MetricsObserver` (counters,
/// per-iteration and per-phase histograms recording into a
/// `MetricsRegistry`) must not cost a single steady-state allocation — the
/// obs record path is handle-based atomics only.
#[test]
fn instrumented_dpar2_steady_state_allocates_nothing() {
    use dpar2_repro::core::{FitMetrics, MetricsObserver};
    use dpar2_repro::obs::MetricsRegistry;

    let t = fixture();
    let registry = MetricsRegistry::new();
    let metrics = FitMetrics::register(&registry, "fit");

    let mut snapshots: Vec<u64> = Vec::with_capacity(64);
    let mut inner = |_e: &IterationEvent| {
        snapshots.push(allocs_now());
        ControlFlow::<StopReason>::Continue(())
    };
    let mut observer = MetricsObserver::wrap(&metrics, &mut inner);
    let fit = Dpar2.fit_observed(&t, &options(), &mut observer).expect("fit failed");
    assert!(fit.iterations >= 3, "need ≥3 iterations, got {}", fit.iterations);
    let deltas: Vec<u64> = snapshots.windows(2).map(|w| w[1] - w[0]).collect();
    assert!(
        deltas.iter().all(|&d| d == 0),
        "instrumented DPar2 allocated in steady state: {deltas:?}"
    );
    // The telemetry really recorded the fit it watched.
    let snap = registry.snapshot();
    assert_eq!(snap.counter("fit_iterations_total"), Some(fit.iterations as u64));
    assert_eq!(snap.counter("fit_fits_total"), Some(1));
}

/// Telemetry pin: a steady-state *instrumented* index probe — the pruned
/// search plus folding its `SearchStats` into pruning counters and its
/// latency into a log₂ histogram — allocates nothing, so the serve
/// engine's metered query path costs what the plain one does.
#[test]
fn instrumented_index_search_steady_state_allocates_nothing() {
    use dpar2_repro::analysis::{EmbeddingIndex, IndexOptions, SearchScratch};
    use dpar2_repro::linalg::Mat;
    use dpar2_repro::obs::MetricsRegistry;
    use dpar2_repro::parallel::ThreadPool;

    let n = 600usize;
    let dim = 12usize;
    let points = Mat::from_fn(n, dim, |i, j| ((i * 29 + j * 11) % 89) as f64 * 0.25);
    let pool = ThreadPool::new(1);
    let index = EmbeddingIndex::build(points.view(), &IndexOptions::default(), &pool);

    let registry = MetricsRegistry::new();
    let probed = registry.counter("probe_partitions_probed_total");
    let scanned = registry.counter("probe_candidates_scanned_total");
    let latency = registry.histogram("probe_latency_ns");

    let mut scratch = SearchScratch::default();
    let mut out = Vec::new();
    index.top_k_similar_into(
        points.row(0),
        0.01,
        16,
        index.num_partitions(),
        Some(0),
        &mut scratch,
        &mut out,
    );

    let before = allocs_now();
    for t in 1..64usize {
        let span = latency.start_span();
        index.top_k_similar_into(
            points.row(t),
            0.01,
            1 + t % 16,
            1 + t % index.num_partitions(),
            Some(t),
            &mut scratch,
            &mut out,
        );
        let stats = scratch.stats();
        probed.add(stats.partitions_probed as u64);
        scanned.add(stats.candidates_scanned as u64);
        drop(span);
    }
    let after = allocs_now();
    assert_eq!(after - before, 0, "instrumented index probe allocated in steady state");
    assert_eq!(latency.count(), 63);
    assert!(probed.get() >= 63);
}

/// Guard for the measurement itself: the thread-local counter observes this
/// thread's allocations (so the zero assertions above are meaningful).
#[test]
fn counter_observes_this_threads_allocations() {
    let before = allocs_now();
    let v: Vec<u64> = Vec::with_capacity(32);
    let after = allocs_now();
    assert!(after > before, "counting allocator not engaged");
    drop(v);
}
