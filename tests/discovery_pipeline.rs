//! Integration tests for the §IV-E discovery pipeline: stock simulation →
//! DPar2 factors → correlation / similarity / ranking analyses.

use dpar2_repro::analysis::{pcc_matrix, rwr_scores, similarity_graph, top_k_neighbors, RwrConfig};
use dpar2_repro::core::{Dpar2, FitOptions};
use dpar2_repro::data::stock::{generate, StockMarketConfig};
use dpar2_repro::linalg::Mat;

fn small_market(seed: u64) -> (StockMarketConfig, dpar2_repro::data::StockDataset) {
    let config = StockMarketConfig::us_like(32, 420, seed);
    let ds = generate(&config);
    (config, ds)
}

#[test]
fn fig12_pipeline_us_vs_kr_contrast() {
    // The Fig. 12 discovery: ATR+OBV correlate with prices on the US
    // profile but not on the KR profile. At laptop-scale K (the paper has
    // ~4000 stocks; we use 64) the latent rotation adds per-seed noise, so
    // the contrast is asserted on the mean over several seeds — the same
    // statistic EXPERIMENTS.md records.
    let run = |cfg: &StockMarketConfig| {
        let ds = generate(cfg);
        let fit = Dpar2
            .fit(&ds.tensor, &FitOptions::new(10).with_seed(3).with_max_iterations(24))
            .expect("fit failed");
        let sel: Vec<usize> = ["CLOSING", "ATR_14", "OBV"]
            .iter()
            .map(|f| ds.feature_names.iter().position(|n| n == f).unwrap())
            .collect();
        let pcc = pcc_matrix(&fit.v, &sel);
        // mean correlation of (ATR, OBV) with CLOSING
        (pcc.at(0, 1) + pcc.at(0, 2)) / 2.0
    };
    let seeds = [13u64, 17, 23, 99];
    let mean =
        |f: &dyn Fn(u64) -> f64| seeds.iter().map(|&s| f(s)).sum::<f64>() / seeds.len() as f64;
    let us = mean(&|s| run(&StockMarketConfig::us_like(64, 420, s)));
    let kr = mean(&|s| run(&StockMarketConfig::kr_like(64, 420, s)));
    assert!(us > kr + 0.05, "mean US ATR/OBV-price coupling ({us:.3}) should exceed KR ({kr:.3})");
}

#[test]
fn table3_pipeline_finds_sector_peers() {
    let (config, ds) = small_market(17);
    let (cs, ce) = config.crash_window.unwrap();
    let windowed = ds.window(cs, ce);
    assert!(windowed.tensor.k() >= 12, "window kept too few stocks");

    let fit = Dpar2
        .fit(&windowed.tensor, &FitOptions::new(8).with_seed(19).with_max_iterations(24))
        .expect("fit failed");

    let factors: Vec<&Mat> = fit.u.iter().collect();
    // Median-heuristic gamma (see table3 binary).
    let mut d2: Vec<f64> = Vec::new();
    for i in 0..factors.len() {
        for j in i + 1..factors.len() {
            d2.push((factors[i] - factors[j]).fro_norm_sq());
        }
    }
    d2.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let gamma = std::f64::consts::LN_2 / d2[d2.len() / 2].max(1e-12);
    let (sim, adj) = similarity_graph(&factors, gamma);

    // Similarities must have real dynamic range (not the degenerate
    // all-equal graph).
    let offdiag: Vec<f64> = (0..sim.rows())
        .flat_map(|i| (0..sim.cols()).filter(move |&j| j != i).map(move |j| (i, j)))
        .map(|(i, j)| sim.at(i, j))
        .collect();
    let max = offdiag.iter().cloned().fold(f64::MIN, f64::max);
    let min = offdiag.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max - min > 0.2, "similarity graph degenerate: range {}", max - min);

    // k-NN and RWR must both run and overlap substantially (paper: the two
    // top-10 lists share most entries).
    let target = windowed.meta.iter().position(|m| m.sector == 0).unwrap();
    let knn: Vec<usize> = top_k_neighbors(&sim, target, 8).into_iter().map(|(i, _)| i).collect();
    let mut q = vec![0.0; factors.len()];
    q[target] = 1.0;
    let scores = rwr_scores(&adj, &q, &RwrConfig::default());
    let mut rwr: Vec<(usize, f64)> =
        scores.iter().enumerate().filter(|&(i, _)| i != target).map(|(i, &s)| (i, s)).collect();
    rwr.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let rwr: Vec<usize> = rwr.into_iter().take(8).map(|(i, _)| i).collect();

    let overlap = knn.iter().filter(|i| rwr.contains(i)).count();
    assert!(overlap >= 4, "k-NN and RWR lists barely overlap: {overlap}/8");
}

#[test]
fn windowing_preserves_decomposability() {
    let (config, ds) = small_market(23);
    let (cs, ce) = config.crash_window.unwrap();
    let windowed = ds.window(cs, ce);
    let fit = Dpar2
        .fit(&windowed.tensor, &FitOptions::new(6).with_seed(29).with_max_iterations(16))
        .expect("fit failed");
    assert!(fit.fitness(&windowed.tensor) > 0.6);
    // All windowed slices share the same length — Eq. 10's requirement.
    let lens = windowed.tensor.row_dims();
    assert!(lens.windows(2).all(|w| w[0] == w[1]));
}
