//! End-to-end acceptance for the wire front-end: concurrent clients over
//! real sockets, a streaming ingest worker republishing the model
//! mid-flight, and the bit-identity contract — every wire answer must
//! match the in-process ranking of exactly the model version it claims to
//! carry, down to the last similarity bit.

use dpar2_repro::core::{FitOptions, StreamingDpar2};
use dpar2_repro::data::planted_parafac2;
use dpar2_repro::net::{ErrorCode, NetClient, NetServer, ServerConfig, WireMode};
use dpar2_repro::serve::{IngestWorker, ModelMeta, ModelRegistry, ModelVersion, QueryEngine};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What one client thread saw: the version each answer claimed, and the
/// raw wire neighbors.
struct Observation {
    target: usize,
    version: u64,
    neighbors: Vec<(u32, u64)>,
}

#[test]
fn concurrent_wire_clients_stay_bit_identical_across_republish() {
    let row_dims: Vec<usize> = (0..12).map(|i| 10 + (i * 7) % 12).collect();
    let full = planted_parafac2(&row_dims, 8, 2, 0.05, 42);
    let slices = full.to_slices();

    // Streaming ingest publishes into the registry the engine serves from.
    let registry = Arc::new(ModelRegistry::new());
    let options = FitOptions::new(2).with_seed(3).with_max_iterations(4);
    let worker = IngestWorker::spawn(
        StreamingDpar2::new(options),
        ModelMeta::new("live"),
        Arc::clone(&registry),
    );
    worker.append(slices[..6].to_vec());
    worker.flush();
    let v1 = registry.get("live").expect("first publish");
    assert_eq!(v1.version, 1);

    let engine = Arc::new(QueryEngine::new(Arc::clone(&registry), 2));
    let config = ServerConfig { poll_interval: Duration::from_millis(5), ..Default::default() };
    let server = NetServer::start(engine, "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();

    // Clients hammer targets valid in every version (v1 has 6 entities)
    // and keep going until they have personally seen the republish.
    let clients: Vec<_> = (0..4)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = NetClient::connect(addr).unwrap();
                client.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                let mut seen = Vec::new();
                let deadline = Instant::now() + Duration::from_secs(20);
                let mut after_upgrade = 0;
                let mut i = 0usize;
                while after_upgrade < 10 {
                    assert!(Instant::now() < deadline, "client {c} never saw version 2");
                    let target = (c + i) % 6;
                    let answer = client
                        .top_k_with_mode("live", target as u32, 3, WireMode::Exact)
                        .expect("transport")
                        .expect("typed answer");
                    if answer.version >= 2 {
                        after_upgrade += 1;
                    }
                    seen.push(Observation {
                        target,
                        version: answer.version,
                        neighbors: answer
                            .neighbors
                            .iter()
                            .map(|&(e, s)| (e, s.to_bits()))
                            .collect(),
                    });
                    i += 1;
                }
                seen
            })
        })
        .collect();

    // Mid-flight: the second half of the universe arrives and republishes.
    std::thread::sleep(Duration::from_millis(30));
    worker.append(slices[6..].to_vec());
    worker.flush();
    let v2 = registry.get("live").expect("second publish");
    assert_eq!(v2.version, 2);

    let versions: HashMap<u64, Arc<ModelVersion>> =
        [(1, Arc::clone(&v1)), (2, Arc::clone(&v2))].into_iter().collect();
    let mut saw_v1 = false;
    let mut saw_v2 = false;
    for handle in clients {
        for obs in handle.join().unwrap() {
            saw_v1 |= obs.version == 1;
            saw_v2 |= obs.version == 2;
            let version = versions
                .get(&obs.version)
                .unwrap_or_else(|| panic!("answer carried unknown version {}", obs.version));
            let reference = version.model.top_k(obs.target, 3).unwrap();
            let reference: Vec<(u32, u64)> =
                reference.iter().map(|&(e, s)| (e as u32, s.to_bits())).collect();
            assert_eq!(
                obs.neighbors, reference,
                "wire answer for target {} under version {} is not bit-identical",
                obs.target, obs.version
            );
        }
    }
    assert!(saw_v2, "no client observed the republished version");
    // v1 answers are expected but not guaranteed (the republish may win
    // the race before any client's first query lands); only assert on
    // what the protocol must uphold.
    let _ = saw_v1;
    server.shutdown();
}

/// Overload end-to-end: with a one-slot connection queue and a single
/// worker pinned by a held connection, excess connections are shed with a
/// typed `Overloaded` within bounded time — while the accepted
/// connection's answers stay bit-identical to the in-process engine.
#[test]
fn overloaded_server_sheds_typed_rejections_while_accepted_answers_stay_exact() {
    let full = planted_parafac2(&[9, 10, 11, 9, 10, 11], 8, 2, 0.05, 7);
    let registry = Arc::new(ModelRegistry::new());
    let worker = IngestWorker::spawn(
        StreamingDpar2::new(FitOptions::new(2).with_seed(5).with_max_iterations(4)),
        ModelMeta::new("live"),
        Arc::clone(&registry),
    );
    worker.append(full.to_slices());
    worker.flush();
    let version = registry.get("live").unwrap();

    let engine = Arc::new(QueryEngine::new(Arc::clone(&registry), 2));
    let config = ServerConfig {
        workers: 1,
        pending_connections: 1,
        poll_interval: Duration::from_millis(5),
        ..Default::default()
    };
    let server = NetServer::start(engine, "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();

    let mut pinned = NetClient::connect(addr).unwrap();
    assert!(pinned.ping().unwrap());
    let _queued = NetClient::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(50));

    // Every further connection must be rejected quickly and typed.
    for _ in 0..3 {
        let mut shed = NetClient::connect(addr).unwrap();
        shed.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let started = Instant::now();
        let resp = shed.read_response().unwrap();
        assert!(started.elapsed() < Duration::from_secs(2), "rejection was not bounded");
        let dpar2_repro::net::Response::Error(e) = resp else {
            panic!("expected typed rejection, got {resp:?}");
        };
        assert_eq!(e.code, ErrorCode::Overloaded);
    }

    // The connection that was admitted still gets exact answers.
    for target in 0..6 {
        let answer = pinned.top_k_with_mode("live", target, 3, WireMode::Exact).unwrap().unwrap();
        let reference = version.model.top_k(target as usize, 3).unwrap();
        let got: Vec<(u32, u64)> =
            answer.neighbors.iter().map(|&(e, s)| (e, s.to_bits())).collect();
        let want: Vec<(u32, u64)> =
            reference.iter().map(|&(e, s)| (e as u32, s.to_bits())).collect();
        assert_eq!(got, want, "accepted connection's answer drifted under overload");
    }
    server.shutdown();
}
