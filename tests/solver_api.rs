//! Conformance and session-control tests for the unified `Parafac2Solver`
//! surface:
//!
//! * **trait-object conformance** — for every registered solver, fitting
//!   through `Box<dyn Parafac2Solver>` (the `Method` registry) is
//!   bit-identical to the direct inherent call on a fixed-seed tensor;
//! * **cancellation** — an observer that breaks at iteration `k` yields
//!   `StopReason::Cancelled` with exactly `k` recorded iterations, on
//!   every solver;
//! * **time budget** — a zero time budget stops after the first iteration
//!   with `StopReason::TimeBudget` and never panics, on every solver;
//! * **warm starts** — `FitOptions::with_warm_start` is honored and
//!   shape-checked uniformly.

use dpar2_repro::baselines::{
    fit_with, fit_with_observer, Method, NaiveCompressedAls, Parafac2Als, RdAls, SpartanDense,
    SpartanSparse,
};
use dpar2_repro::core::{
    CancelToken, Dpar2, Dpar2Error, FitOptions, IterationEvent, Parafac2Fit, Parafac2Solver,
    StopReason,
};
use dpar2_repro::data::planted_parafac2;
use dpar2_repro::tensor::{IrregularTensor, SparseIrregularTensor};
use std::ops::ControlFlow;
use std::time::Duration;

fn fixture() -> IrregularTensor {
    planted_parafac2(&[22, 30, 18, 26], 14, 3, 0.2, 2001)
}

fn options() -> FitOptions<'static> {
    FitOptions::new(3).with_seed(2002).with_max_iterations(8)
}

/// Everything deterministic in a fit, compared bitwise (timing excluded —
/// wall-clock is never reproducible).
fn assert_bit_identical(a: &Parafac2Fit, b: &Parafac2Fit, label: &str) {
    assert_eq!(a.iterations, b.iterations, "{label}: iterations");
    assert_eq!(a.stop_reason, b.stop_reason, "{label}: stop reason");
    assert_eq!(a.h, b.h, "{label}: H differs");
    assert_eq!(a.v, b.v, "{label}: V differs");
    assert_eq!(a.s, b.s, "{label}: S differs");
    assert_eq!(a.u, b.u, "{label}: U differs");
    assert_eq!(a.criterion_trace, b.criterion_trace, "{label}: criterion trace differs");
}

/// Satellite: trait-object dispatch is bit-identical to the inherent call
/// for each of the six solvers.
#[test]
fn trait_object_fit_bit_identical_to_inherent_call() {
    let t = fixture();
    let opts = options();
    let direct: Vec<(&str, Parafac2Fit)> = vec![
        ("DPar2", Dpar2.fit(&t, &opts).unwrap()),
        ("RD-ALS", RdAls.fit(&t, &opts).unwrap()),
        ("PARAFAC2-ALS", Parafac2Als.fit(&t, &opts).unwrap()),
        ("SPARTan", SpartanDense.fit(&t, &opts).unwrap()),
        ("SPARTan-sparse", SpartanSparse.fit(&t, &opts).unwrap()),
        ("NaiveCompressed", NaiveCompressedAls.fit(&t, &opts).unwrap()),
    ];
    for (method, (name, inherent)) in Method::WITH_ABLATION.iter().zip(&direct) {
        assert_eq!(method.name(), *name);
        let boxed: Box<dyn Parafac2Solver> = method.solver();
        let via_trait = boxed.fit(&t, &opts).unwrap();
        assert_bit_identical(&via_trait, inherent, name);
        // And through the registry veneer too.
        let via_registry = fit_with(*method, &t, &opts).unwrap();
        assert_bit_identical(&via_registry, inherent, name);
    }
}

/// Satellite: an observer that breaks at iteration k cancels with exactly
/// k recorded iterations — uniformly across solvers.
#[test]
fn observer_break_at_k_cancels_with_k_iterations() {
    let t = fixture();
    // tolerance 0 so no solver converges before the break point.
    let opts = options().with_tolerance(0.0);
    for method in Method::WITH_ABLATION {
        for k in [1usize, 3] {
            let mut obs = |e: &IterationEvent| {
                if e.iteration == k {
                    ControlFlow::Break(StopReason::Cancelled)
                } else {
                    ControlFlow::Continue(())
                }
            };
            let fit = fit_with_observer(method, &t, &opts, &mut obs).unwrap();
            assert_eq!(
                fit.stop_reason,
                StopReason::Cancelled,
                "{}: break at {k} not typed as cancellation",
                method.name()
            );
            assert_eq!(fit.iterations, k, "{}: iteration count at break {k}", method.name());
            assert_eq!(fit.criterion_trace.len(), k, "{}: trace length", method.name());
            assert_eq!(fit.timing.per_iteration_secs.len(), k, "{}: timing length", method.name());
        }
    }
}

/// Satellite: a zero time budget stops every solver after exactly one
/// iteration — the first iteration always runs, nothing panics, and the
/// partial factors have full shapes.
#[test]
fn zero_time_budget_stops_after_first_iteration_never_panics() {
    let t = fixture();
    let opts = options().with_tolerance(0.0).with_time_budget(Duration::ZERO);
    for method in Method::WITH_ABLATION {
        let fit = fit_with(method, &t, &opts)
            .unwrap_or_else(|e| panic!("{}: zero budget errored: {e}", method.name()));
        assert_eq!(fit.stop_reason, StopReason::TimeBudget, "{}", method.name());
        assert_eq!(fit.iterations, 1, "{}: must run exactly one iteration", method.name());
        assert_eq!(fit.v.shape(), (t.j(), opts.rank), "{}: V shape", method.name());
        assert_eq!(fit.u.len(), t.k(), "{}: U count", method.name());
    }
}

/// A zero *iteration* budget is uniform too: no solver panics, the loop
/// never runs, and the initial factors come back well-formed with
/// `StopReason::MaxIterations`.
#[test]
fn zero_iteration_budget_returns_initial_factors_everywhere() {
    let t = fixture();
    let opts = options().with_max_iterations(0);
    for method in Method::WITH_ABLATION {
        let fit = fit_with(method, &t, &opts)
            .unwrap_or_else(|e| panic!("{}: zero iterations errored: {e}", method.name()));
        assert_eq!(fit.stop_reason, StopReason::MaxIterations, "{}", method.name());
        assert_eq!(fit.iterations, 0, "{}", method.name());
        assert!(fit.criterion_trace.is_empty(), "{}", method.name());
        assert_eq!(fit.v.shape(), (t.j(), opts.rank), "{}: V shape", method.name());
        for k in 0..t.k() {
            assert_eq!(fit.u[k].shape(), (t.i(k), opts.rank), "{}: U_{k} shape", method.name());
        }
        // The (unoptimized) model is still evaluable.
        let f = fit.fitness(&t);
        assert!(f.is_finite(), "{}: fitness {f}", method.name());
    }
}

/// A generous (non-zero) budget on a tiny problem lets fits converge
/// normally — the budget only caps, it never truncates early.
#[test]
fn generous_time_budget_does_not_perturb_convergence() {
    let t = fixture();
    let unbudgeted = Dpar2.fit(&t, &options()).unwrap();
    let budgeted = Dpar2.fit(&t, &options().with_time_budget(Duration::from_secs(3600))).unwrap();
    assert_bit_identical(&budgeted, &unbudgeted, "DPar2 with generous budget");
}

/// A `CancelToken` cancelled before the fit stops every solver at its
/// first iteration boundary (the serving shutdown path).
#[test]
fn pre_cancelled_token_stops_every_solver_at_first_boundary() {
    let t = fixture();
    let opts = options().with_tolerance(0.0);
    for method in Method::WITH_ABLATION {
        let token = CancelToken::new();
        token.cancel();
        let mut obs = token.clone();
        let fit = fit_with_observer(method, &t, &opts, &mut obs).unwrap();
        assert_eq!(fit.stop_reason, StopReason::Cancelled, "{}", method.name());
        assert_eq!(fit.iterations, 1, "{}", method.name());
    }
}

/// Warm starts flow through the shared options for every solver: correct
/// shapes are accepted, wrong ranks are a typed error (never a panic).
#[test]
fn warm_start_accepted_and_shape_checked_everywhere() {
    let t = fixture();
    let opts = options();
    let cold = Dpar2.fit(&t, &opts).unwrap();
    let small = Dpar2.fit(&t, &FitOptions::new(2).with_seed(2002)).unwrap();
    for method in Method::WITH_ABLATION {
        let warm = fit_with(method, &t, &opts.with_warm_start(&cold))
            .unwrap_or_else(|e| panic!("{}: warm start rejected: {e}", method.name()));
        assert_eq!(warm.v.shape(), (t.j(), 3), "{}", method.name());
        let err = fit_with(method, &t, &opts.with_warm_start(&small)).unwrap_err();
        assert!(
            matches!(err, Dpar2Error::WarmStart { .. }),
            "{}: expected WarmStart error, got {err:?}",
            method.name()
        );
    }
}

/// Dense-vs-sparse fit equivalence: `SpartanSparse` on the CSR form of a
/// tensor produces factors **bit-identical** to `SpartanDense` on the
/// dense original. The column/rank configuration (J = 7, R = 3) keeps
/// every dense product inside `SpartanDense` on the naive dispatch path,
/// where the sparse kernels' ordering discipline guarantees exact
/// agreement; threads = 1 pins the dense solver's slice scheduling to the
/// order the sparse solver always uses.
#[test]
fn sparse_fit_bit_identical_to_densified_dense_fit() {
    let t = planted_parafac2(&[24, 31, 19, 27], 7, 3, 0.2, 2003);
    let sparse = SparseIrregularTensor::from_dense(&t);
    let opts = FitOptions::new(3).with_seed(2004).with_max_iterations(6).with_threads(1);
    let dense_fit = SpartanDense.fit(&t, &opts).unwrap();
    let sparse_fit = SpartanSparse.fit_sparse(&sparse, &opts).unwrap();
    assert_bit_identical(&sparse_fit, &dense_fit, "SPARTan-sparse vs densified SPARTan");
    // The dense-tensor entry point sparsifies internally and must land on
    // the exact same fit.
    let via_dense_entry = SpartanSparse.fit(&t, &opts).unwrap();
    assert_bit_identical(&via_dense_entry, &dense_fit, "SPARTan-sparse dense entry point");
}

/// Method parses from its display name and the bench-style aliases, and
/// every registry entry produces a solver whose name round-trips.
#[test]
fn method_names_round_trip_through_the_registry() {
    for method in Method::WITH_ABLATION {
        let parsed: Method = method.to_string().parse().unwrap();
        assert_eq!(parsed, method);
        assert_eq!(method.solver().name(), method.name());
    }
    assert!("not-a-method".parse::<Method>().is_err());
}
