//! Acceptance test for the serving subsystem: a model is fitted, saved,
//! reloaded into a fresh registry, and served to four concurrent query
//! threads while a background ingest append publishes a new version
//! mid-flight. Every answer must be *exactly* the old version's ranking or
//! *exactly* the new version's ranking — a torn state (mixed factors, or a
//! cached answer leaking across versions) would break the equality.

use dpar2_repro::core::{Dpar2, FitOptions, StreamingDpar2};
use dpar2_repro::data::planted_parafac2;
use dpar2_repro::serve::{
    IngestWorker, ModelMeta, ModelRegistry, QueryEngine, SavedModel, ServedModel,
};
use std::sync::Arc;

/// One observed answer: (version, target, ranked neighbors).
type Observation = (u64, usize, Vec<(usize, f64)>);

#[test]
fn save_load_serve_concurrently_with_midflight_publish() {
    // Offline: fit on 12 equal-height entities.
    let n = 12usize;
    let k = 4usize;
    let tensor = planted_parafac2(&vec![30; n], 14, 3, 0.05, 1234);
    let config = FitOptions::new(3).with_seed(5);
    let fit = Dpar2.fit(&tensor, &config).expect("fit");

    // Persist, then reload into a *fresh* registry.
    let meta = ModelMeta::new("live").with_gamma(0.05);
    let saved = SavedModel::new(meta.clone(), fit);
    let bytes = saved.to_bytes().expect("encode");
    let reloaded = SavedModel::from_bytes(&bytes).expect("decode");
    assert_eq!(reloaded, saved, "round-trip must be bit-exact");

    let registry = Arc::new(ModelRegistry::new());
    assert_eq!(registry.publish("live", ServedModel::from_saved(reloaded)), 1);
    let engine = Arc::new(QueryEngine::new(registry.clone(), 2));

    // Ground truth for version 1, computed single-threaded before any
    // concurrency starts.
    let v1_model = registry.get("live").expect("published");
    let expected_v1: Vec<Vec<(usize, f64)>> =
        (0..n).map(|t| v1_model.model.top_k(t, k).expect("v1 ground truth")).collect();

    // Ingest worker seeded with the same slices the model was fitted on.
    let mut stream = StreamingDpar2::new(config);
    stream.append(tensor.to_slices()).expect("seed stream");
    let worker = IngestWorker::spawn(stream, meta, registry.clone());

    // Four query threads loop until they have observed version 2 (and have
    // run a healthy number of queries), while the main thread appends a
    // batch — so the publish lands mid-flight.
    let observed: Vec<Observation> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..4usize {
            let engine = engine.clone();
            handles.push(scope.spawn(move || {
                let mut out = Vec::new();
                let mut iters = 0usize;
                loop {
                    let target = (iters * 5 + t) % n;
                    let res = engine.top_k("live", target, k).expect("query");
                    let saw_new = res.version >= 2;
                    out.push((res.version, target, (*res.neighbors).clone()));
                    iters += 1;
                    if (saw_new && iters >= 64) || iters > 200_000 {
                        break;
                    }
                }
                out
            }));
        }
        let extra = planted_parafac2(&[30; 3], 14, 3, 0.05, 4321);
        worker.append(extra.to_slices());
        worker.flush();
        handles.into_iter().flat_map(|h| h.join().expect("query thread panicked")).collect()
    });
    assert!(worker.errors().is_empty(), "ingest errors: {:?}", worker.errors());
    assert_eq!(registry.version("live"), Some(2));

    // Ground truth for version 2 (the registry now holds it).
    let v2_model = registry.get("live").expect("version 2");
    assert_eq!(v2_model.model.entities(), n + 3);
    let expected_v2: Vec<Vec<(usize, f64)>> =
        (0..n).map(|t| v2_model.model.top_k(t, k).expect("v2 ground truth")).collect();

    let mut v2_answers = 0usize;
    for (version, target, neighbors) in &observed {
        match version {
            1 => assert_eq!(neighbors, &expected_v1[*target], "stale/torn v1 answer"),
            2 => {
                v2_answers += 1;
                assert_eq!(neighbors, &expected_v2[*target], "stale/torn v2 answer");
            }
            v => panic!("impossible version {v}"),
        }
    }
    assert!(v2_answers >= 4, "every thread should observe the new version");
    // The two versions rank against different entity sets, so v1 and v2
    // ground truths genuinely differ — the either/or check above is not
    // vacuous.
    assert_ne!(expected_v1, expected_v2, "publish produced an identical model");

    worker.shutdown();
}
