//! Acceptance test for the serving subsystem: a model is fitted, saved,
//! reloaded into a fresh registry, and served to four concurrent query
//! threads while a background ingest append publishes a new version
//! mid-flight. Every answer must be *exactly* the old version's ranking or
//! *exactly* the new version's ranking — a torn state (mixed factors, or a
//! cached answer leaking across versions) would break the equality.

use dpar2_repro::core::{Dpar2, FitOptions, StreamingDpar2};
use dpar2_repro::data::planted_parafac2;
use dpar2_repro::serve::{
    IndexOptions, IngestWorker, ModelMeta, ModelRegistry, QueryEngine, QueryMode, SavedModel,
    ServedModel,
};
use std::sync::Arc;

/// One observed answer: (version, target, ranked neighbors).
type Observation = (u64, usize, Vec<(usize, f64)>);

#[test]
fn save_load_serve_concurrently_with_midflight_publish() {
    // Offline: fit on 12 equal-height entities.
    let n = 12usize;
    let k = 4usize;
    let tensor = planted_parafac2(&vec![30; n], 14, 3, 0.05, 1234);
    let config = FitOptions::new(3).with_seed(5);
    let fit = Dpar2.fit(&tensor, &config).expect("fit");

    // Persist, then reload into a *fresh* registry.
    let meta = ModelMeta::new("live").with_gamma(0.05);
    let saved = SavedModel::new(meta.clone(), fit);
    let bytes = saved.to_bytes().expect("encode");
    let reloaded = SavedModel::from_bytes(&bytes).expect("decode");
    assert_eq!(reloaded, saved, "round-trip must be bit-exact");

    let registry = Arc::new(ModelRegistry::new());
    assert_eq!(registry.publish("live", ServedModel::from_saved(reloaded)), 1);
    let engine = Arc::new(QueryEngine::new(registry.clone(), 2));

    // Ground truth for version 1, computed single-threaded before any
    // concurrency starts.
    let v1_model = registry.get("live").expect("published");
    let expected_v1: Vec<Vec<(usize, f64)>> =
        (0..n).map(|t| v1_model.model.top_k(t, k).expect("v1 ground truth")).collect();

    // Ingest worker seeded with the same slices the model was fitted on.
    let mut stream = StreamingDpar2::new(config);
    stream.append(tensor.to_slices()).expect("seed stream");
    let worker = IngestWorker::spawn(stream, meta, registry.clone());

    // Four query threads loop until they have observed version 2 (and have
    // run a healthy number of queries), while the main thread appends a
    // batch — so the publish lands mid-flight.
    let observed: Vec<Observation> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..4usize {
            let engine = engine.clone();
            handles.push(scope.spawn(move || {
                let mut out = Vec::new();
                let mut iters = 0usize;
                loop {
                    let target = (iters * 5 + t) % n;
                    let res = engine.top_k("live", target, k).expect("query");
                    let saw_new = res.version >= 2;
                    out.push((res.version, target, (*res.neighbors).clone()));
                    iters += 1;
                    if (saw_new && iters >= 64) || iters > 200_000 {
                        break;
                    }
                }
                out
            }));
        }
        let extra = planted_parafac2(&[30; 3], 14, 3, 0.05, 4321);
        worker.append(extra.to_slices());
        worker.flush();
        handles.into_iter().flat_map(|h| h.join().expect("query thread panicked")).collect()
    });
    assert!(worker.errors().is_empty(), "ingest errors: {:?}", worker.errors());
    assert_eq!(registry.version("live"), Some(2));

    // Ground truth for version 2 (the registry now holds it).
    let v2_model = registry.get("live").expect("version 2");
    assert_eq!(v2_model.model.entities(), n + 3);
    let expected_v2: Vec<Vec<(usize, f64)>> =
        (0..n).map(|t| v2_model.model.top_k(t, k).expect("v2 ground truth")).collect();

    let mut v2_answers = 0usize;
    for (version, target, neighbors) in &observed {
        match version {
            1 => assert_eq!(neighbors, &expected_v1[*target], "stale/torn v1 answer"),
            2 => {
                v2_answers += 1;
                assert_eq!(neighbors, &expected_v2[*target], "stale/torn v2 answer");
            }
            v => panic!("impossible version {v}"),
        }
    }
    assert!(v2_answers >= 4, "every thread should observe the new version");
    // The two versions rank against different entity sets, so v1 and v2
    // ground truths genuinely differ — the either/or check above is not
    // vacuous.
    assert_ne!(expected_v1, expected_v2, "publish produced an identical model");

    worker.shutdown();
}

/// The indexed serving path under churn: an indexed ingest worker keeps
/// publishing new versions while concurrent threads query in the default
/// `Indexed` mode at full probe depth (the bitwise-exact setting). Builds
/// land asynchronously, so any given answer may come from the exact
/// fallback (index not yet installed) or from the index — either way it
/// must equal that version's exact ground truth *bitwise*, and no query
/// may ever error while a build is in flight.
#[test]
fn indexed_ingest_serves_exact_answers_through_inflight_builds() {
    let n = 10usize;
    let k = 4usize;
    let tensor = planted_parafac2(&vec![24; n], 12, 3, 0.05, 77);
    let config = FitOptions::new(3).with_seed(6);
    let meta = ModelMeta::new("hot").with_gamma(0.05);

    let registry = Arc::new(ModelRegistry::new());
    let engine = Arc::new(QueryEngine::with_cache_capacity(registry.clone(), 2, 0));
    let stream = StreamingDpar2::new(config);
    let worker =
        IngestWorker::spawn_indexed(stream, meta, registry.clone(), IndexOptions::default(), 1);

    // `usize::MAX` probes ≥ every group's partition count, so an indexed
    // answer is bitwise-equal to the exact scan — which lets the assertion
    // below treat fallback and indexed answers uniformly.
    let full_probe = QueryMode::Indexed { nprobe: Some(usize::MAX) };

    let observed = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..3usize {
            let engine = engine.clone();
            handles.push(scope.spawn(move || {
                let mut out: Vec<Observation> = Vec::new();
                let mut indexed_seen = 0usize;
                let mut iters = 0usize;
                // Loop until the final version has been observed (plus a
                // healthy number of answers), so the queries genuinely
                // overlap all three publishes and their index builds.
                loop {
                    // Only the first batch's entities: present in every
                    // published version, so no out-of-range races.
                    let target = (iters * 3 + t) % 4;
                    match engine.top_k_with_mode("hot", target, k, full_probe) {
                        Ok(res) => {
                            indexed_seen += usize::from(res.indexed());
                            out.push((res.version, target, (*res.neighbors).clone()));
                        }
                        Err(dpar2_repro::serve::ServeError::ModelNotFound(_)) => {
                            // First publish may not have landed yet.
                        }
                        Err(e) => panic!("query errored mid-build: {e}"),
                    }
                    iters += 1;
                    let saw_final = out.last().is_some_and(|(v, _, _)| *v >= 3);
                    if (saw_final && out.len() >= 64) || iters > 2_000_000 {
                        break;
                    }
                }
                (out, indexed_seen)
            }));
        }
        // Three appends → three published versions, each triggering an
        // asynchronous index build while the query threads hammer away.
        for batch in 0..3 {
            let lo = batch * 4;
            let hi = (lo + 4).min(n);
            worker.append(tensor.to_slices()[lo..hi].to_vec());
            worker.flush();
        }
        handles.into_iter().map(|h| h.join().expect("query thread panicked")).collect::<Vec<_>>()
    });
    assert!(worker.errors().is_empty(), "ingest errors: {:?}", worker.errors());
    worker.flush_indexes();
    assert_eq!(registry.version("hot"), Some(3));
    let current = registry.get("hot").expect("current version");
    assert!(current.index().is_some(), "final version indexed after flush_indexes");

    // Exact ground truth per version: recompute each published version's
    // rankings from scratch. Versions 1/2 were replaced in the registry,
    // so rebuild their models from the same deterministic stream prefix.
    let mut ground_truth: Vec<Vec<Vec<(usize, f64)>>> = Vec::new();
    let mut replay = StreamingDpar2::new(FitOptions::new(3).with_seed(6));
    for batch in 0..3 {
        let lo = batch * 4;
        let hi = (lo + 4).min(n);
        replay.append(tensor.to_slices()[lo..hi].to_vec()).expect("replay append");
        let fit = replay.decompose().expect("replay decompose");
        let model = ServedModel::from_parts(ModelMeta::new("hot").with_gamma(0.05), fit);
        ground_truth.push((0..n).map(|t| model.top_k(t, k).unwrap_or_default()).collect());
    }

    let mut total_answers = 0usize;
    let mut total_indexed = 0usize;
    for (answers, indexed_seen) in observed {
        total_indexed += indexed_seen;
        for (version, target, neighbors) in answers {
            total_answers += 1;
            let expected = &ground_truth[(version - 1) as usize][target];
            assert_eq!(
                &neighbors, expected,
                "version {version} target {target}: answer diverged from exact ground truth"
            );
        }
    }
    assert!(total_answers > 0, "query threads never observed the model");
    // Not asserted ≥1 per thread: builds can complete before/after any
    // given query, but across 120k queries and 3 builds it would be
    // astonishing to see zero indexed answers *and* zero fallback answers.
    let _ = total_indexed;

    worker.shutdown();
}
