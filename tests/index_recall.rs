//! Acceptance suite for the pruned factor-embedding index: the exactness
//! knob and the recall/speed trade-off it buys.
//!
//! Three contracts are pinned here:
//!
//! 1. **Exactness degeneration** — `nprobe = num_partitions` (or any
//!    larger value) must reproduce the exact brute-force ranking
//!    *bitwise*: same ids, same similarity bits, same tie-breaks, on every
//!    generated dataset. This is a property test, not a tolerance test;
//!    the index shares the exact path's fused arithmetic and total order,
//!    so there is nothing to be approximately equal about.
//! 2. **Recall behavior below full probe depth** — recall@k is monotone
//!    non-decreasing in `nprobe`, and on clustered data (the workload the
//!    partitioner is built for) the default probe depth already clears
//!    0.95 recall@10.
//! 3. **Serving fallback** — an `Indexed`-mode query against a version
//!    whose background build has not finished returns the exact answer,
//!    never an error or a partial ranking.

use dpar2_repro::analysis::{squared_distance, EmbeddingIndex, IndexOptions};
use dpar2_repro::core::{Parafac2Fit, StopReason, TimingBreakdown};
use dpar2_repro::linalg::{Mat, MatRef};
use dpar2_repro::parallel::ThreadPool;
use dpar2_repro::serve::{
    build_and_install, ModelMeta, ModelRegistry, QueryEngine, QueryMode, ServedModel,
};
use proptest::prelude::*;
use proptest::strategy::Just;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Brute-force Eq. 10 top-k over raw rows — the reference the index must
/// reproduce bitwise at full probe depth. Ranking: similarity descending,
/// ties by ascending id (the `select_top_k` total order).
fn exact_top_k(
    points: &Mat,
    query: &[f64],
    gamma: f64,
    k: usize,
    exclude: Option<usize>,
) -> Vec<(usize, f64)> {
    let mut pairs: Vec<(usize, f64)> = (0..points.rows())
        .filter(|&i| Some(i) != exclude)
        .map(|i| (i, (-gamma * squared_distance(query, points.row(i))).exp()))
        .collect();
    pairs.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    pairs.truncate(k);
    pairs
}

/// Fraction of the exact top-k ids the approximate answer recovered.
fn recall(approx: &[(usize, f64)], exact: &[(usize, f64)]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let hit = exact.iter().filter(|(id, _)| approx.iter().any(|(a, _)| a == id)).count();
    hit as f64 / exact.len() as f64
}

/// `centers` Gaussian blobs of `per` points each in `dim` dimensions —
/// the clustered geometry the k-means partitioner targets.
fn clustered_points(centers: usize, per: usize, dim: usize, spread: f64, seed: u64) -> Mat {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut uniform = move |lo: f64, hi: f64| lo + (hi - lo) * rng.random::<f64>();
    let centroids: Vec<Vec<f64>> =
        (0..centers).map(|_| (0..dim).map(|_| uniform(-10.0, 10.0)).collect()).collect();
    Mat::from_fn(centers * per, dim, |i, j| centroids[i / per][j] + uniform(-spread, spread))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The exactness knob: probing every partition is bitwise-identical to
    /// the brute-force scan — ids, similarity bits, and tie-break order —
    /// for arbitrary point sets (including duplicate rows, which force
    /// tie-breaking) and arbitrary partition counts.
    #[test]
    fn full_probe_is_bitwise_identical_to_exact(
        (n, dim, rows) in (2usize..60, 1usize..6).prop_flat_map(|(n, dim)| {
            (Just(n), Just(dim), prop::collection::vec(-50.0f64..50.0, n * dim))
        }),
        partitions in 1usize..12,
        k in 1usize..12,
        gamma in 1e-3f64..1.0,
        dup in 0usize..2,
    ) {
        let mut rows = rows;
        if dup == 1 && n >= 2 {
            // Duplicate row 0 into row 1: distinct ids at identical
            // distance, so the tie-break order itself is under test.
            let (head, tail) = rows.split_at_mut(dim);
            tail[..dim].copy_from_slice(head);
        }
        let points = Mat::from_vec(n, dim, rows);
        let pool = ThreadPool::new(2);
        let options = IndexOptions { partitions: Some(partitions), ..IndexOptions::default() };
        let index = EmbeddingIndex::build(points.view(), &options, &pool);
        for target in [0, n / 2, n - 1] {
            let exact = exact_top_k(&points, points.row(target), gamma, k, Some(target));
            for probe in [index.num_partitions(), index.num_partitions() + 7] {
                let indexed =
                    index.top_k_similar(points.row(target), gamma, k, probe, Some(target));
                prop_assert_eq!(&indexed, &exact, "target {} probe {}", target, probe);
            }
        }
    }

    /// recall@k never decreases as `nprobe` grows, and reaches exactly 1
    /// at full probe depth.
    #[test]
    fn recall_is_monotone_in_nprobe(seed in 0u64..500, k in 1usize..10) {
        let points = clustered_points(6, 25, 8, 0.5, seed);
        let pool = ThreadPool::new(2);
        let index = EmbeddingIndex::build(points.view(), &IndexOptions::default(), &pool);
        let query = points.row(0);
        let exact = exact_top_k(&points, query, 0.01, k, Some(0));
        let mut last = 0.0f64;
        for probe in 1..=index.num_partitions() {
            let approx = index.top_k_similar(query, 0.01, k, probe, Some(0));
            let r = recall(&approx, &exact);
            prop_assert!(r >= last, "recall dropped {} -> {} at nprobe {}", last, r, probe);
            last = r;
        }
        prop_assert_eq!(last, 1.0);
    }
}

/// On clustered data the default probe depth (a ~10% subset of the
/// partitions) already recovers ≥ 0.95 of the exact top-10 — the
/// operating point BENCH_topk.json records at scale.
#[test]
fn default_nprobe_clears_recall_bar_on_clustered_data() {
    let points = clustered_points(20, 100, 16, 0.8, 77);
    let pool = ThreadPool::new(4);
    let index = EmbeddingIndex::build(points.view(), &IndexOptions::default(), &pool);
    assert!(index.default_nprobe() < index.num_partitions(), "default must actually prune");
    let mut total = 0.0;
    let queries = 100usize;
    for t in 0..queries {
        let target = t * (points.rows() / queries);
        let exact = exact_top_k(&points, points.row(target), 0.01, 10, Some(target));
        let approx =
            index.top_k_similar(points.row(target), 0.01, 10, index.default_nprobe(), Some(target));
        total += recall(&approx, &exact);
    }
    let mean = total / queries as f64;
    assert!(mean >= 0.95, "mean recall@10 at default nprobe: {mean}");
}

fn served_model(points: &Mat, gamma: f64) -> ServedModel {
    let n = points.rows();
    let dim = points.cols();
    let u: Vec<Mat> = (0..n).map(|i| Mat::from_fn(1, dim, |_, j| points.at(i, j))).collect();
    let fit = Parafac2Fit {
        s: vec![vec![1.0; dim]; n],
        v: Mat::eye(dim),
        h: Mat::eye(dim),
        u,
        iterations: 0,
        criterion_trace: vec![],
        stop_reason: StopReason::Converged,
        timing: TimingBreakdown::default(),
    };
    ServedModel::from_parts(ModelMeta::new("recall").with_gamma(gamma), fit)
}

/// The serving contract during an in-flight build: `Indexed` queries on a
/// version without an installed index answer exactly (never an error,
/// never a partial ranking), and flip to the index transparently once it
/// lands — still bitwise-exact at full probe depth.
#[test]
fn indexed_queries_fall_back_exact_during_build_then_match_bitwise() {
    let points = clustered_points(8, 30, 6, 0.5, 11);
    let registry = Arc::new(ModelRegistry::new());
    let version = registry.publish_arc("recall", served_model(&points, 0.02));
    let engine = QueryEngine::with_cache_capacity(Arc::clone(&registry), 1, 0);

    let exact: Vec<Vec<(usize, f64)>> = (0..points.rows())
        .map(|t| {
            (*engine.top_k_with_mode("recall", t, 10, QueryMode::Exact).unwrap().neighbors).clone()
        })
        .collect();

    // Build not installed yet: every Indexed query must succeed and equal
    // the exact answer verbatim.
    for t in 0..points.rows() {
        let res = engine
            .top_k_with_mode("recall", t, 10, QueryMode::Indexed { nprobe: None })
            .expect("in-flight build must never surface as a query error");
        assert!(!res.indexed(), "no index installed yet");
        assert_eq!(*res.neighbors, exact[t]);
    }

    // Install (synchronously here; the IndexBuilder path is covered by the
    // serve crate's own tests), then full-probe Indexed answers must be
    // bitwise-identical to the exact ones.
    let pool = ThreadPool::new(2);
    assert!(build_and_install(&version, &IndexOptions::default(), &pool));
    let full = version.index().unwrap().num_partitions_for(0);
    for t in 0..points.rows() {
        let res =
            engine.top_k_with_mode("recall", t, 10, QueryMode::Indexed { nprobe: full }).unwrap();
        assert!(res.indexed());
        assert_eq!(*res.neighbors, exact[t], "target {t}");
    }
}

/// Sanity anchor for the property test's reference: `exact_top_k` agrees
/// with the serve engine's own exact scan through the same model shape.
#[test]
fn brute_force_reference_matches_engine_exact_path() {
    let points = clustered_points(4, 10, 5, 1.0, 3);
    let model = served_model(&points, 0.05);
    let q = MatRef::from_slice(1, points.cols(), points.row(7));
    assert_eq!(q.rows(), 1);
    let engine_exact = model.top_k(7, 6).unwrap();
    let reference = exact_top_k(&points, points.row(7), 0.05, 6, Some(7));
    assert_eq!(engine_exact, reference);
}
