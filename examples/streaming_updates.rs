//! Streaming decomposition — the paper's stated future work (§VI), built
//! on the incremental two-stage compression of `dpar2_core::streaming`.
//!
//! Scenario: a stock universe grows as new companies list. Each quarter a
//! batch of new (days × features) slices arrives; the compressed
//! representation is updated incrementally (cost independent of the old
//! slices) and the decomposition warm-starts from the previous factors.
//!
//! ```text
//! cargo run --release --example streaming_updates
//! ```

use dpar2_repro::core::{Dpar2, FitOptions, StreamingDpar2};
use dpar2_repro::data::planted_parafac2;
use dpar2_repro::tensor::IrregularTensor;
use std::time::Instant;

fn main() {
    // A shared-structure universe of 24 slices, arriving in 4 batches.
    let row_dims: Vec<usize> = (0..24).map(|i| 60 + (i * 13) % 80).collect();
    let full = planted_parafac2(&row_dims, 32, 6, 0.1, 99);
    let slices = full.to_slices();

    let config = FitOptions::new(6).with_seed(5).with_tolerance(1e-5);
    let mut stream = StreamingDpar2::new(config);

    println!("batch  slices  append(ms)  iters  decompose(ms)  fitness(sofar)");
    let mut ingested = 0;
    for batch in slices.chunks(6) {
        let t0 = Instant::now();
        stream.append(batch.to_vec()).expect("append failed");
        let append_ms = t0.elapsed().as_secs_f64() * 1e3;
        ingested += batch.len();

        let t1 = Instant::now();
        let fit = stream.decompose().expect("decompose failed");
        let decompose_ms = t1.elapsed().as_secs_f64() * 1e3;

        let so_far = IrregularTensor::new(slices[..ingested].to_vec());
        println!(
            "{:>5}  {:>6}  {:>10.1}  {:>5}  {:>13.1}  {:>14.4}",
            ingested / 6,
            ingested,
            append_ms,
            fit.iterations,
            decompose_ms,
            fit.fitness(&so_far)
        );
    }

    // Compare the final streaming state against a from-scratch batch run.
    let batch_fit = Dpar2.fit(&full, &config).expect("batch fit failed");
    let mut stream2 = StreamingDpar2::new(config);
    stream2.append(slices).expect("append failed");
    let stream_fit = stream2.decompose().expect("decompose failed");
    println!(
        "\nfinal fitness: batch {:.4} vs streaming-compressed {:.4}",
        batch_fit.fitness(&full),
        stream_fit.fitness(&full)
    );
    println!("(incremental stage-2 updates cost O(J*K_new*R^2) per batch — they never");
    println!("touch the old slices, unlike recompressing from scratch.)");
}
