//! Quickstart: decompose a small irregular tensor with DPar2 and inspect
//! the PARAFAC2 factors.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dpar2_repro::core::{Dpar2, FitOptions};
use dpar2_repro::data::planted_parafac2;

fn main() {
    // An irregular tensor: 6 slices with different row counts, J = 30
    // shared columns, a planted rank-5 PARAFAC2 structure + 10% noise.
    let tensor = planted_parafac2(&[80, 120, 60, 150, 95, 110], 30, 5, 0.1, 42);
    println!(
        "tensor: K = {} slices, J = {}, I_k = {:?}",
        tensor.k(),
        tensor.j(),
        tensor.row_dims()
    );

    // Configure DPar2 exactly like the paper's experiments: target rank,
    // 32 max iterations, seeded for reproducibility.
    let config = FitOptions::new(5).with_seed(7).with_max_iterations(32);
    let fit = Dpar2.fit(&tensor, &config).expect("decomposition failed");

    println!("\nPARAFAC2 model  X_k ≈ U_k S_k Vᵀ");
    println!("  V: {}x{} (shared)", fit.v.rows(), fit.v.cols());
    println!("  H: {}x{} (shared; U_k = Q_k H)", fit.h.rows(), fit.h.cols());
    for k in 0..tensor.k() {
        println!(
            "  U_{k}: {}x{}   diag(S_{k}) = {:?}",
            fit.u[k].rows(),
            fit.u[k].cols(),
            fit.s[k].iter().map(|v| (v * 100.0).round() / 100.0).collect::<Vec<_>>()
        );
    }

    println!("\nsolver diagnostics:");
    println!("  iterations          : {}", fit.iterations);
    println!("  preprocessing       : {:.1} ms", fit.timing.preprocess_secs * 1e3);
    println!("  mean iteration time : {:.2} ms", fit.timing.mean_iteration_secs() * 1e3);
    println!("  fitness             : {:.4}  (1.0 = perfect reconstruction)", fit.fitness(&tensor));

    // The PARAFAC2 invariant: U_kᵀ U_k is the same matrix for every slice.
    let ref_gram = fit.u[0].gram();
    let max_dev =
        (1..tensor.k()).map(|k| (&fit.u[k].gram() - &ref_gram).fro_norm()).fold(0.0f64, f64::max);
    println!("  max deviation of U_kᵀU_k across slices: {max_dev:.2e} (PARAFAC2 constraint)");
}
