//! Audio-corpus factorization — the FMA-style workload from the paper's
//! introduction: decompose a collection of variable-length log-power
//! spectrograms and use the per-song weights `diag(S_k)` to find songs with
//! similar spectral signatures.
//!
//! ```text
//! cargo run --release --example audio_similarity
//! ```

use dpar2_repro::core::{Dpar2, FitOptions};
use dpar2_repro::data::spectrogram::{generate, SpectrogramConfig};

fn main() {
    // 40 synthetic "songs": log-power spectrograms with 96 frequency bins
    // and 20-60 frames each.
    let corpus = generate(&SpectrogramConfig::music(40, 96, 60, 7));
    println!(
        "corpus: {} songs, {} frequency bins, {}..{} frames",
        corpus.k(),
        corpus.j(),
        corpus.row_dims().iter().min().unwrap(),
        corpus.row_dims().iter().max().unwrap()
    );

    let fit = Dpar2
        .fit(&corpus, &FitOptions::new(8).with_seed(3).with_max_iterations(32))
        .expect("decomposition failed");
    println!(
        "fitness {:.4}, compression preprocessing took {:.0} ms\n",
        fit.fitness(&corpus),
        fit.timing.preprocess_secs * 1e3
    );

    // diag(S_k) is a rank-8 "spectral signature" per song: how strongly
    // each shared latent frequency profile (column of V) is expressed.
    // Cosine similarity between signatures finds songs that share timbre.
    let cosine = |a: &[f64], b: &[f64]| {
        let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
        let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
        dot / (na * nb).max(1e-300)
    };

    let target = 0;
    let mut ranked: Vec<(usize, f64)> = (0..corpus.k())
        .filter(|&k| k != target)
        .map(|k| (k, cosine(&fit.s[target], &fit.s[k])))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

    println!("songs most similar to song {target} by latent spectral signature:");
    for &(k, s) in ranked.iter().take(5) {
        println!("  song {k:>2}: cosine {s:.4} ({} frames)", corpus.i(k));
    }
    println!("\nleast similar:");
    for &(k, s) in ranked.iter().rev().take(3) {
        println!("  song {k:>2}: cosine {s:.4} ({} frames)", corpus.i(k));
    }

    // The shared V columns are latent frequency profiles; show where each
    // concentrates its energy.
    println!("\nlatent frequency profiles (argmax bin of each V column):");
    for r in 0..fit.rank() {
        let col = fit.v.col(r);
        let argmax = col
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        println!("  component {r}: peak at bin {argmax}/{}", corpus.j());
    }
}
