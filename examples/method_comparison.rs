//! Head-to-head comparison of the PARAFAC2 solvers on one dataset — a
//! miniature of the paper's Fig. 1 experiment, showing the unified
//! `Parafac2Solver` surface: one `FitOptions` drives every method, solvers
//! are addressable by name (`Method: FromStr`), fits carry a typed
//! `StopReason`, and a `FitObserver` streams the live convergence trace.
//!
//! ```text
//! cargo run --release --example method_comparison
//! ```

use dpar2_repro::baselines::{fit_with, fit_with_observer, Method};
use dpar2_repro::core::{FitOptions, IterationEvent, StopReason};
use dpar2_repro::data::registry;
use std::ops::ControlFlow;

fn main() {
    // Activity-sim at 30% scale: small enough to run all four methods in
    // seconds, large enough for meaningful timing differences.
    let spec = registry().into_iter().find(|s| s.name == "Activity-sim").expect("spec");
    let tensor = spec.generate_scaled(0.3, 11);
    println!(
        "dataset: {} at scale 0.3 (max I_k = {}, J = {}, K = {})\n",
        spec.name,
        tensor.max_i(),
        tensor.j(),
        tensor.k()
    );

    // One options value for the whole sweep — methods are selected by
    // name, exactly how the bench bins' --methods flag works.
    let config = FitOptions::new(10).with_max_iterations(32).with_seed(5);
    println!(
        "{:>14}  {:>10} {:>12} {:>10} {:>8} {:>7}  stop",
        "method", "total", "preprocess", "per-iter", "fitness", "iters"
    );
    for name in ["dpar2", "rd-als", "parafac2-als", "spartan"] {
        let method: Method = name.parse().expect("registered method name");
        let fit = fit_with(method, &tensor, &config).expect("solver failed");
        println!(
            "{:>14}  {:>9.0}ms {:>11.0}ms {:>9.2}ms {:>8.4} {:>7}  {:?}",
            method.name(),
            fit.timing.total_secs * 1e3,
            fit.timing.preprocess_secs * 1e3,
            fit.timing.mean_iteration_secs() * 1e3,
            fit.fitness(&tensor),
            fit.iterations,
            fit.stop_reason,
        );
    }

    // The observer path: a live fitness trace from DPar2's compressed
    // criterion, with cooperative early stopping once fitness plateaus
    // within 1e-3 of the previous iteration.
    println!("\nDPar2 live trace (observer-driven, early-stop on plateau):");
    let mut last = f64::NEG_INFINITY;
    let mut observer = |e: &IterationEvent| {
        println!(
            "  iter {:>2}: compressed fitness {:.6} ({:.2}ms)",
            e.iteration,
            e.fitness(),
            e.iteration_secs * 1e3
        );
        let stop = e.fitness() - last < 1e-3;
        last = e.fitness();
        if stop {
            ControlFlow::Break(StopReason::Cancelled)
        } else {
            ControlFlow::Continue(())
        }
    };
    let fit = fit_with_observer(Method::Dpar2, &tensor, &config.with_tolerance(0.0), &mut observer)
        .expect("solver failed");
    println!("stopped after {} iterations: {:?}", fit.iterations, fit.stop_reason);

    println!("\nExpected shape (paper Fig. 1/9): DPar2 cheapest per iteration with");
    println!("fitness comparable to the ALS baselines; RD-ALS pays a large");
    println!("preprocessing cost plus true-error convergence checks.");
}
