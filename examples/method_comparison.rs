//! Head-to-head comparison of all four PARAFAC2 solvers on one dataset —
//! a miniature of the paper's Fig. 1 experiment, showing the shared
//! `Parafac2Fit` interface across methods.
//!
//! ```text
//! cargo run --release --example method_comparison
//! ```

use dpar2_repro::baselines::{fit_with, AlsConfig, Method};
use dpar2_repro::data::registry;

fn main() {
    // Activity-sim at 30% scale: small enough to run all four methods in
    // seconds, large enough for meaningful timing differences.
    let spec = registry().into_iter().find(|s| s.name == "Activity-sim").expect("spec");
    let tensor = spec.generate_scaled(0.3, 11);
    println!(
        "dataset: {} at scale 0.3 (max I_k = {}, J = {}, K = {})\n",
        spec.name,
        tensor.max_i(),
        tensor.j(),
        tensor.k()
    );

    let config = AlsConfig::new(10).with_max_iterations(32).with_seed(5);
    println!(
        "{:>14}  {:>10} {:>12} {:>10} {:>8} {:>7}",
        "method", "total", "preprocess", "per-iter", "fitness", "iters"
    );
    for method in Method::ALL {
        let fit = fit_with(method, &tensor, &config).expect("solver failed");
        println!(
            "{:>14}  {:>9.0}ms {:>11.0}ms {:>9.2}ms {:>8.4} {:>7}",
            method.name(),
            fit.timing.total_secs * 1e3,
            fit.timing.preprocess_secs * 1e3,
            fit.timing.mean_iteration_secs() * 1e3,
            fit.fitness(&tensor),
            fit.iterations,
        );
    }
    println!("\nExpected shape (paper Fig. 1/9): DPar2 cheapest per iteration with");
    println!("fitness comparable to the ALS baselines; RD-ALS pays a large");
    println!("preprocessing cost plus true-error convergence checks.");
}
