//! The serving lifecycle end to end — the online half of the system built
//! in `dpar2-serve`:
//!
//! 1. fit a PARAFAC2 model offline (DPar2),
//! 2. save it to the versioned, checksummed binary format and reload it
//!    bit-exact,
//! 3. publish into a registry and serve top-k similar-entity queries from
//!    four concurrent threads through the cached query engine,
//! 4. append new entities live through the background ingest worker and
//!    watch queries switch to the new model version.
//!
//! ```text
//! cargo run --release --example serve_demo
//! ```

use dpar2_repro::core::{Dpar2, FitOptions, StreamingDpar2};
use dpar2_repro::data::planted_parafac2;
use dpar2_repro::serve::{
    IngestWorker, ModelMeta, ModelRegistry, QueryEngine, SavedModel, ServedModel,
};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // 1. Offline fit. Equal slice heights keep every entity pairwise
    //    comparable (§IV-E2: U_i − U_j needs matching shapes).
    let n = 16usize;
    let tensor = planted_parafac2(&vec![40; n], 24, 5, 0.08, 42);
    let config = FitOptions::new(5).with_seed(7).with_threads(2);
    let fit = Dpar2.fit(&tensor, &config).expect("fit failed");
    println!(
        "fitted: {} entities, rank {}, fitness {:.4}",
        fit.k(),
        fit.rank(),
        fit.fitness(&tensor)
    );

    // 2. Persist and reload.
    let labels: Vec<String> = (0..n).map(|i| format!("STK{i:02}")).collect();
    let meta = ModelMeta::new("stocks")
        .with_dataset("planted-16x40x24")
        .with_gamma(0.05)
        .with_entity_labels(labels);
    let saved = SavedModel::new(meta, fit);
    let path = std::env::temp_dir().join("dpar2_serve_demo.dpar2");
    saved.save(&path).expect("save failed");
    let file_len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    let loaded = SavedModel::load(&path).expect("load failed");
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded, saved, "round-trip must be bit-exact");
    println!("persisted {file_len} bytes -> reloaded bit-exact");

    // 3. Publish version 1 and serve concurrent queries.
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("stocks", ServedModel::from_saved(loaded));
    let engine = Arc::new(QueryEngine::new(registry.clone(), 2));

    let per_thread = 250usize;
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..4usize {
            let engine = engine.clone();
            scope.spawn(move || {
                for q in 0..per_thread {
                    let target = (q * 7 + t) % n;
                    engine.top_k("stocks", target, 5).expect("query failed");
                }
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = engine.cache_stats();
    println!(
        "4 threads x {per_thread} top-5 queries in {:.1}ms ({:.0} q/s; cache {} hits / {} misses)",
        elapsed * 1e3,
        (4 * per_thread) as f64 / elapsed,
        stats.hits,
        stats.misses
    );

    let v1 = registry.get("stocks").expect("published");
    let answer = engine.top_k("stocks", 0, 5).expect("query failed");
    println!("top-5 similar to {} (version {}):", v1.model.label(0).unwrap(), answer.version);
    for &(i, s) in answer.neighbors.iter() {
        println!("  {}  sim {s:.4}", v1.model.label(i).unwrap());
    }

    // 4. Live append: the ingest worker drains new slices through
    //    StreamingDpar2 and publishes version 2 while the engine keeps
    //    serving.
    let mut stream = StreamingDpar2::new(config);
    stream.append(tensor.to_slices()).expect("seed stream");
    let worker =
        IngestWorker::spawn(stream, ModelMeta::new("stocks").with_gamma(0.05), registry.clone());
    let newcomers = planted_parafac2(&[40; 4], 24, 5, 0.08, 99);
    let t1 = Instant::now();
    worker.append(newcomers.to_slices());
    worker.flush();
    println!(
        "\ningest: appended 4 entities, published version {} ({} entities) in {:.0}ms",
        registry.version("stocks").unwrap(),
        registry.get("stocks").unwrap().model.entities(),
        t1.elapsed().as_secs_f64() * 1e3
    );
    let fresh = engine.top_k("stocks", 0, 5).expect("query failed");
    println!(
        "same query now answered from version {} (cache invalidated by versioned keys: hit = {})",
        fresh.version, fresh.cache_hit
    );
    assert_eq!(fresh.version, 2);
    worker.shutdown();
}
