//! The wire front-end end to end: fit a model, serve it over TCP, and
//! talk to it three ways — the binary protocol, the HTTP text mode, and
//! a deliberate protocol error that comes back typed instead of killing
//! the connection.
//!
//! ```text
//! cargo run --release --example net_demo
//! ```

use dpar2_repro::core::{Dpar2, FitOptions};
use dpar2_repro::data::planted_parafac2;
use dpar2_repro::net::{protocol, NetClient, NetServer, Response, ServerConfig};
use dpar2_repro::obs::MetricsRegistry;
use dpar2_repro::serve::{ModelMeta, ModelRegistry, QueryEngine, ServedModel};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn main() {
    // Fit a small market: 16 tickers, irregular histories. Histories
    // repeat across tickers (Eq. 10 similarity only compares entities of
    // equal shape, §IV-E2), so every ticker has comparable peers.
    let row_dims: Vec<usize> = (0..16).map(|i| 40 + (i % 3) * 15).collect();
    let tensor = planted_parafac2(&row_dims, 12, 4, 0.1, 7);
    let fit = Dpar2.fit(&tensor, &FitOptions::new(4).with_seed(7)).expect("fit failed");

    let registry = Arc::new(ModelRegistry::new());
    registry.publish("market", ServedModel::from_parts(ModelMeta::new("market"), fit));
    let engine = Arc::new(QueryEngine::new(registry, 2));

    // One listener, two dialects.
    let obs = Arc::new(MetricsRegistry::new());
    let server = NetServer::start_observed(engine, "127.0.0.1:0", ServerConfig::default(), obs)
        .expect("bind server");
    let addr = server.local_addr();
    println!("serving model 'market' on {addr}\n");

    // 1. Binary protocol: length-prefixed frames, bit-exact similarities.
    let mut client = NetClient::connect(addr).expect("connect");
    println!("binary: ping -> pong: {}", client.ping().expect("ping"));
    let answer = client.top_k("market", 0, 5).expect("transport").expect("answer");
    println!(
        "binary: top-5 of entity 0 (model version {}, {} path):",
        answer.version,
        if answer.indexed { "indexed" } else { "exact" }
    );
    for &(entity, sim) in &answer.neighbors {
        println!("   entity {entity:>2}  similarity {sim:.6}  bits 0x{:016X}", sim.to_bits());
    }

    // 2. A malformed frame is a typed error, not a dropped connection.
    client.send_raw(&protocol::encode_frame(&[0xDE, 0xAD, 0xBE, 0xEF])).expect("send");
    match client.read_response().expect("typed response") {
        Response::Error(e) => println!("\nbinary: garbage frame answered with: {e}"),
        other => println!("\nbinary: unexpected {other:?}"),
    }
    println!("binary: connection still alive: {}", client.ping().expect("ping after error"));

    // 3. HTTP text mode on the same port — what `curl` would see.
    for path in ["/healthz", "/topk/market/0?k=3&mode=exact"] {
        let mut stream = TcpStream::connect(addr).expect("connect http");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: demo\r\n\r\n").expect("request");
        let mut reply = String::new();
        stream.read_to_string(&mut reply).expect("response");
        let body = reply.split("\r\n\r\n").nth(1).unwrap_or("");
        let status = reply.lines().next().unwrap_or("");
        println!("\nhttp: GET {path}\n   {status}\n   {body}");
    }

    server.shutdown();
    println!("\nserver drained and shut down cleanly");
}
