//! Stock-market analysis end to end — the §IV-E workflow of the paper on
//! the simulated US market:
//!
//! 1. generate an irregular (days × features × stocks) tensor,
//! 2. decompose it with DPar2,
//! 3. correlate feature latent vectors (the Fig. 12 heatmap),
//! 4. find stocks similar to a technology target through k-NN and RWR
//!    (the Table III workflow).
//!
//! ```text
//! cargo run --release --example stock_analysis
//! ```

use dpar2_repro::analysis::{pcc_matrix, rwr_scores, similarity_graph, top_k_neighbors, RwrConfig};
use dpar2_repro::core::{Dpar2, FitOptions};
use dpar2_repro::data::stock::{generate, StockMarketConfig};
use dpar2_repro::linalg::Mat;

fn main() {
    // 1. Simulate a small US-like market: 48 stocks, 600-day history.
    let market = StockMarketConfig::us_like(48, 600, 2024);
    let ds = generate(&market);
    println!(
        "market: {} stocks x {} features, listing lengths {}..{} days",
        ds.tensor.k(),
        ds.tensor.j(),
        ds.tensor.row_dims().iter().min().unwrap(),
        ds.tensor.row_dims().iter().max().unwrap()
    );

    // 2. Decompose at rank 10 (the paper's default).
    let fit = Dpar2
        .fit(&ds.tensor, &FitOptions::new(10).with_seed(1).with_max_iterations(32))
        .expect("decomposition failed");
    println!("fitness {:.4} after {} iterations\n", fit.fitness(&ds.tensor), fit.iterations);

    // 3. Feature-correlation analysis on V (Fig. 12).
    let features = ["CLOSING", "ATR_14", "STOCH_K_14", "OBV", "MACD"];
    let rows: Vec<usize> = features
        .iter()
        .map(|f| ds.feature_names.iter().position(|n| n == f).expect("feature"))
        .collect();
    let pcc = pcc_matrix(&fit.v, &rows);
    println!("PCC of feature latent vectors with CLOSING:");
    for (i, f) in features.iter().enumerate().skip(1) {
        println!("  {f:>10}: {:+.3}", pcc.at(0, i));
    }

    // 4. Similar-stock search during the crash window (Table III).
    let (cs, ce) = market.crash_window.expect("crash window");
    let windowed = ds.window(cs, ce);
    let wfit = Dpar2
        .fit(&windowed.tensor, &FitOptions::new(10).with_seed(2))
        .expect("windowed decomposition failed");
    let factors: Vec<&Mat> = wfit.u.iter().collect();
    // Median-heuristic gamma keeps the similarity graph discriminative.
    let mut d2: Vec<f64> = Vec::new();
    for i in 0..factors.len() {
        for j in i + 1..factors.len() {
            d2.push((factors[i] - factors[j]).fro_norm_sq());
        }
    }
    d2.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let gamma = std::f64::consts::LN_2 / d2[d2.len() / 2].max(1e-12);
    let (sim, adj) = similarity_graph(&factors, gamma);

    let target = windowed.meta.iter().position(|m| m.sector == 0).expect("tech stock");
    println!("\ntop-5 stocks similar to {} during the crash window:", windowed.meta[target].ticker);
    println!("  via k-NN:");
    for (i, s) in top_k_neighbors(&sim, target, 5) {
        let m = &windowed.meta[i];
        println!("    {} [{}] sim {s:.3}", m.ticker, windowed.sector_names[m.sector]);
    }
    let mut q = vec![0.0; factors.len()];
    q[target] = 1.0;
    let scores = rwr_scores(&adj, &q, &RwrConfig::default());
    let mut ranked: Vec<(usize, f64)> =
        scores.iter().enumerate().filter(|&(i, _)| i != target).map(|(i, &s)| (i, s)).collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("  via RWR (c = 0.15):");
    for &(i, s) in ranked.iter().take(5) {
        let m = &windowed.meta[i];
        println!("    {} [{}] score {s:.4}", m.ticker, windowed.sector_names[m.sector]);
    }
}
